"""The reproduction harness: registry completeness, golden validation,
digest properties, and the disk-memo isolation fix.

Four layers of protection:

* **Completeness** — every EXPERIMENTS.md heading is rendered by
  exactly one registry entry, in document order, and every entry has a
  committed, internally consistent golden (``check_registry``).
* **End-to-end** — cheap entries run under the quick profile against
  the committed goldens and pass; a deliberately corrupted golden
  fails, naming the entry, through both the harness and the CLI exit
  path.
* **Digest properties** — hypothesis fuzz: any single-field
  perturbation of a payload changes its digest, and dict insertion
  order never does.
* **Isolation** — ``REPRO_DISK_CACHE=1`` plus a reproduce run must
  never clear the user's persistent compile memo (the cold protocol
  re-roots into a temp store instead).
"""

import copy
import json
import os

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.reproduce import (
    DEFAULT_GOLDENS_DIR,
    EXEMPT_TITLES,
    REGISTRY,
    EntryReport,
    ReproduceReport,
    canonical_json,
    check_registry,
    document_titles,
    entry_names,
    isolated_disk_cache,
    registered_titles,
    result_digest,
    run_profile,
)


class TestRegistryCompleteness:
    """EXPERIMENTS.md and the registry are the same list, both ways."""

    def test_every_document_section_is_registered(self):
        with open("EXPERIMENTS.md") as handle:
            titles = [t for t in document_titles(handle.read())
                      if t not in EXEMPT_TITLES]
        assert titles == registered_titles(), \
            "EXPERIMENTS.md headings drifted from the registry — " \
            "regenerate via scripts/generate_experiments_md.py or " \
            "register the new section"

    def test_entry_names_unique_and_kebab(self):
        names = entry_names()
        assert len(names) == len(set(names))
        for name in names:
            assert name == name.lower().strip()

    def test_bench_runs_last(self):
        # BENCH clears process caches around every measurement; nothing
        # may depend on a warm memo after it, so it must close the run.
        assert REGISTRY[-1].kind == "bench"
        assert all(e.kind == "experiment" for e in REGISTRY[:-1])

    def test_check_registry_passes_on_committed_state(self):
        assert check_registry() == []

    def test_every_entry_has_a_committed_golden(self):
        for entry in REGISTRY:
            profiles = ("quick", "full") if entry.per_profile else ("full",)
            for profile in profiles:
                path = os.path.join(DEFAULT_GOLDENS_DIR,
                                    f"{entry.golden_key(profile)}.json")
                assert os.path.exists(path), f"missing golden {path}"

    def test_exact_goldens_are_self_consistent(self):
        for entry in REGISTRY:
            if entry.validation != "exact":
                continue
            path = os.path.join(DEFAULT_GOLDENS_DIR,
                                f"{entry.golden_key('full')}.json")
            with open(path) as handle:
                golden = json.load(handle)
            assert golden["digest"] == result_digest(golden["payload"])
            assert golden["name"] == entry.name


class TestQuickProfileEndToEnd:
    """Cheap entries, real goldens: run -> validate -> report."""

    def test_quick_entries_pass_against_committed_goldens(self, tmp_path):
        report = run_profile(profile="quick", only=["table1", "fig16"],
                             cache_dir=str(tmp_path / "explore"))
        assert [e.status for e in report.entries] == ["pass", "pass"]
        assert report.ok
        assert report.failures == []
        assert report.profile == "quick"
        assert report.budget_s == 300.0
        for entry in report.entries:
            assert entry.digest == entry.golden_digest

    def test_corrupted_golden_fails_naming_the_entry(self, tmp_path):
        goldens = tmp_path / "goldens"
        goldens.mkdir()
        with open(os.path.join(DEFAULT_GOLDENS_DIR, "fig16.json")) as fh:
            golden = json.load(fh)
        first_key = next(iter(golden["payload"]["rows"]))
        golden["payload"]["rows"][first_key] += 1.0
        golden["digest"] = result_digest(golden["payload"])
        with open(goldens / "fig16.json", "w") as fh:
            json.dump(golden, fh)
        report = run_profile(profile="quick", only=["fig16"],
                             goldens_dir=str(goldens),
                             cache_dir=str(tmp_path / "explore"))
        assert not report.ok
        assert report.failures == ["fig16"]
        (entry,) = report.entries
        assert entry.status == "fail"
        assert any("digest mismatch" in f for f in entry.failures)

    def test_cli_exits_nonzero_naming_the_corrupted_entry(self, tmp_path):
        from repro.cli import main

        goldens = tmp_path / "goldens"
        goldens.mkdir()
        with open(os.path.join(DEFAULT_GOLDENS_DIR, "fig16.json")) as fh:
            golden = json.load(fh)
        golden["digest"] = "0" * 64
        with open(goldens / "fig16.json", "w") as fh:
            json.dump(golden, fh)
        with pytest.raises(SystemExit) as excinfo:
            main(["reproduce", "--only", "fig16",
                  "--goldens-dir", str(goldens),
                  "--cache-dir", str(tmp_path / "explore"),
                  "--out", str(tmp_path / "reproduce_report.json")])
        assert "fig16" in str(excinfo.value)
        with open(tmp_path / "reproduce_report.json") as fh:
            doc = json.load(fh)
        assert doc["ok"] is False
        assert doc["failures"] == ["fig16"]

    def test_unknown_entry_is_an_error(self):
        with pytest.raises(KeyError):
            run_profile(only=["does-not-exist"])

    def test_blessing_writes_a_loadable_golden(self, tmp_path):
        goldens = tmp_path / "goldens"
        report = run_profile(profile="quick", only=["fig16"], bless=True,
                             goldens_dir=str(goldens),
                             cache_dir=str(tmp_path / "explore"))
        assert report.blessed
        assert report.entries[0].status == "blessed"
        check = run_profile(profile="quick", only=["fig16"],
                            goldens_dir=str(goldens),
                            cache_dir=str(tmp_path / "explore"))
        assert check.ok


class TestBenchBandPolicy:
    """The band validator mirrors check_regression.py plus the
    short-reference-leg guard."""

    @staticmethod
    def _golden(ref_wall_s):
        row = {"name": "perf_sim", "points": 20,
               "speedup_vs_reference": 4.0}
        if ref_wall_s is not None:
            row["ref_wall_s"] = ref_wall_s
        return {"payload": {"rows": [row]}}

    @staticmethod
    def _fresh(speedup):
        return {"rows": [{"name": "perf_sim", "points": 20,
                          "speedup_vs_reference": speedup,
                          "ref_wall_s": 0.012}]}

    def test_short_reference_leg_is_not_enforced(self):
        from repro.reproduce.goldens import validate_bench_band
        assert validate_bench_band(
            self._fresh(1.5), self._golden(ref_wall_s=0.012)) == []

    def test_long_reference_leg_is_enforced(self):
        from repro.reproduce.goldens import validate_bench_band
        failures = validate_bench_band(
            self._fresh(1.5), self._golden(ref_wall_s=1.0))
        assert failures and "below floor" in failures[0]

    def test_legacy_golden_without_ref_wall_is_enforced(self):
        from repro.reproduce.goldens import validate_bench_band
        failures = validate_bench_band(
            self._fresh(1.5), self._golden(ref_wall_s=None))
        assert failures and "below floor" in failures[0]

    def test_within_band_passes_regardless(self):
        from repro.reproduce.goldens import validate_bench_band
        assert validate_bench_band(
            self._fresh(3.9), self._golden(ref_wall_s=1.0)) == []


class TestReportSchema:
    """``reproduce_report.json`` round-trips exactly."""

    @staticmethod
    def _sample() -> ReproduceReport:
        return ReproduceReport(
            profile="quick", repro_version="1.9.0", cold=False,
            budget_s=300.0, wall_s=12.5,
            entries=[
                EntryReport(name="fig16", kind="experiment",
                            validation="exact", status="pass",
                            wall_s=0.4, digest="a" * 64,
                            golden_digest="a" * 64),
                EntryReport(name="bench", kind="bench",
                            validation="bench-band", status="fail",
                            wall_s=30.0,
                            failures=["benchmark 'compile': speedup "
                                      "1.00x below floor 2.00x"]),
            ])

    def test_round_trip(self):
        report = self._sample()
        rebuilt = ReproduceReport.from_dict(
            json.loads(report.to_json()))
        assert rebuilt == report

    def test_derived_fields(self):
        doc = self._sample().to_dict()
        assert doc["ok"] is False
        assert doc["failures"] == ["bench"]
        assert doc["schema_version"] == 1

    def test_table_names_failures(self):
        table = self._sample().table()
        assert "FAIL (bench)" in table
        assert "below floor" in table


# -- digest property fuzz ---------------------------------------------------

_leaves = st.one_of(
    st.integers(min_value=-10**9, max_value=10**9),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=8),
    st.booleans(),
    st.none(),
)

_payloads = st.dictionaries(
    st.text(min_size=1, max_size=6),
    st.recursive(
        _leaves,
        lambda children: st.one_of(
            st.lists(children, max_size=3),
            st.dictionaries(st.text(min_size=1, max_size=4), children,
                            max_size=3)),
        max_leaves=8),
    min_size=1, max_size=4)


def _leaf_paths(node, prefix=()):
    """Every path to a JSON leaf in ``node`` (dicts/lists traversed)."""
    if isinstance(node, dict):
        for key, value in node.items():
            yield from _leaf_paths(value, prefix + (key,))
    elif isinstance(node, list):
        for index, value in enumerate(node):
            yield from _leaf_paths(value, prefix + (index,))
    else:
        yield prefix


def _get(node, path):
    for step in path:
        node = node[step]
    return node


def _set(node, path, value):
    for step in path[:-1]:
        node = node[step]
    node[path[-1]] = value


class TestDigestProperties:
    """No silent collisions: perturbations change the digest, dict
    ordering never does."""

    @settings(max_examples=200, deadline=None)
    @given(payload=_payloads, data=st.data())
    def test_any_single_field_perturbation_changes_the_digest(
            self, payload, data):
        paths = list(_leaf_paths(payload))
        assume(paths)
        path = data.draw(st.sampled_from(paths))
        replacement = data.draw(_leaves)
        # "Different field value" means canonically different — 2 and
        # 2.0 (or 1 and True) serialize apart by design, while an equal
        # float reached by another route is the same result.
        assume(canonical_json(replacement) !=
               canonical_json(_get(payload, path)))
        mutated = copy.deepcopy(payload)
        _set(mutated, path, replacement)
        assert result_digest(mutated) != result_digest(payload)

    @settings(max_examples=100, deadline=None)
    @given(payload=_payloads)
    def test_dict_insertion_order_never_matters(self, payload):
        reordered = dict(reversed(list(payload.items())))
        assert result_digest(reordered) == result_digest(payload)

    def test_nan_payloads_are_rejected(self):
        with pytest.raises(ValueError):
            result_digest({"x": float("nan")})

    def test_float_formatting_is_repr_exact(self):
        assert result_digest({"x": 0.1}) != result_digest({"x": 0.1 + 1e-16})
        assert result_digest({"x": -0.0}) != result_digest({"x": 0.0})


class TestDiskCacheIsolation:
    """The REPRO_DISK_CACHE=1 regression: a reproduce run must never
    clear the user's persistent compile memo."""

    def test_isolated_disk_cache_survives_process_cache_clear(
            self, tmp_path, monkeypatch):
        from repro.explore import runner as runner_mod
        from repro.perf.bench import clear_process_caches
        from repro.perf.diskcache import SCHEMA_VERSION, DiskCompileCache

        user_store = tmp_path / "user-memo"
        version_dir = user_store / f"v{SCHEMA_VERSION}"
        version_dir.mkdir(parents=True)
        sentinel = version_dir / "profiles-cafe.pkl"
        sentinel.write_bytes(b"user data")
        monkeypatch.setenv("REPRO_DISK_CACHE", "1")
        monkeypatch.setenv("REPRO_COMPILE_CACHE_DIR", str(user_store))
        original_cache = runner_mod._PROCESS_CACHE
        original_incremental = runner_mod._PROCESS_INCREMENTAL
        with isolated_disk_cache():
            assert isinstance(runner_mod._PROCESS_CACHE, DiskCompileCache)
            assert not runner_mod._PROCESS_CACHE.root.startswith(
                str(user_store))
            assert os.environ["REPRO_COMPILE_CACHE_DIR"] != str(user_store)
            # The operation that used to delete the user's on-disk
            # store (DiskCompileCache.clear drops the current root).
            clear_process_caches()
        assert sentinel.read_bytes() == b"user data"
        assert os.environ["REPRO_COMPILE_CACHE_DIR"] == str(user_store)
        assert runner_mod._PROCESS_CACHE is original_cache
        assert runner_mod._PROCESS_INCREMENTAL is original_incremental

    def test_isolation_is_a_noop_when_disk_cache_is_off(self, monkeypatch):
        from repro.explore import runner as runner_mod

        monkeypatch.delenv("REPRO_DISK_CACHE", raising=False)
        original = runner_mod._PROCESS_CACHE
        with isolated_disk_cache():
            assert runner_mod._PROCESS_CACHE is original

    def test_full_profile_run_leaves_user_memo_intact(
            self, tmp_path, monkeypatch):
        user_store = tmp_path / "user-memo"
        (user_store / "v1").mkdir(parents=True)
        sentinel = user_store / "v1" / "dups-beef.pkl"
        sentinel.write_bytes(b"precious")
        monkeypatch.setenv("REPRO_DISK_CACHE", "1")
        monkeypatch.setenv("REPRO_COMPILE_CACHE_DIR", str(user_store))
        report = run_profile(profile="full", only=["fig16"], bless=True,
                             goldens_dir=str(tmp_path / "goldens"))
        assert report.entries[0].status == "blessed"
        assert sentinel.read_bytes() == b"precious"
        assert os.environ["REPRO_COMPILE_CACHE_DIR"] == str(user_store)


class TestColdAssertion:
    """The full profile proves its cold-cache promise."""

    def test_full_profile_records_cold_and_populates_fresh_cache(
            self, tmp_path):
        report = run_profile(profile="full", only=["shard"], bless=True,
                             goldens_dir=str(tmp_path / "goldens"))
        assert report.cold
        assert report.entries[0].status == "blessed"

    def test_quick_profile_is_not_cold(self, tmp_path):
        report = run_profile(profile="quick", only=["fig16"], bless=True,
                             goldens_dir=str(tmp_path / "goldens"),
                             cache_dir=str(tmp_path / "explore"))
        assert not report.cold
