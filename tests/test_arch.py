"""Hardware abstraction: tier parameters, modes, architecture, presets."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.arch import (
    CellType,
    ChipTier,
    CIMArchitecture,
    ComputingMode,
    CoreTier,
    CrossbarTier,
    get_preset,
    isaac_baseline,
    jain2021,
    jia2021,
    puma,
    table2_example,
)
from repro.errors import ArchitectureError, ModeError


class TestTiers:
    def test_negative_core_number_rejected(self):
        with pytest.raises(ArchitectureError):
            ChipTier(core_number=0)

    def test_grid_mismatch_rejected(self):
        with pytest.raises(ArchitectureError):
            ChipTier(core_number=6, core_grid=(2, 2))

    def test_xb_grid_mismatch_rejected(self):
        with pytest.raises(ArchitectureError):
            CoreTier(xb_number=5, xb_grid=(2, 2))

    def test_parallel_row_bounds(self):
        with pytest.raises(ArchitectureError):
            CrossbarTier(xb_size=(32, 32), parallel_row=64)
        with pytest.raises(ArchitectureError):
            CrossbarTier(xb_size=(32, 32), parallel_row=0)

    def test_effective_parallel_row_defaults_to_rows(self):
        xb = CrossbarTier(xb_size=(64, 32))
        assert xb.effective_parallel_row == 64

    def test_capacity(self):
        xb = CrossbarTier(xb_size=(128, 128), cell_bits=2)
        assert xb.capacity_bits == 128 * 128 * 2

    @given(bits=st.integers(1, 32), cell=st.integers(1, 8))
    def test_bit_slices_cover_weight(self, bits, cell):
        xb = CrossbarTier(xb_size=(8, 8), cell_bits=cell)
        slices = xb.bit_slices(bits)
        assert slices * cell >= bits
        assert (slices - 1) * cell < bits

    @given(act=st.integers(1, 32), dac=st.integers(1, 8))
    def test_input_passes_cover_activation(self, act, dac):
        xb = CrossbarTier(xb_size=(8, 8), dac_bits=dac)
        passes = xb.input_passes(act)
        assert passes * dac >= act

    @given(rows_used=st.integers(1, 128), pr=st.integers(1, 128))
    def test_row_waves_cover_rows(self, rows_used, pr):
        xb = CrossbarTier(xb_size=(128, 8), parallel_row=pr)
        waves = xb.row_waves(rows_used)
        assert waves * pr >= rows_used

    def test_row_waves_zero_rows(self):
        assert CrossbarTier(xb_size=(8, 8)).row_waves(0) == 0


class TestCellType:
    def test_only_sram_cheap_writes(self):
        assert CellType.SRAM.cheap_writes
        for ct in CellType:
            if ct is not CellType.SRAM:
                assert not ct.cheap_writes

    def test_write_ratios_ordered(self):
        assert CellType.SRAM.write_cost_ratio < \
            CellType.RERAM.write_cost_ratio < \
            CellType.FLASH.write_cost_ratio


class TestModes:
    def test_visible_tiers(self):
        assert ComputingMode.CM.visible_tiers == 1
        assert ComputingMode.XBM.visible_tiers == 2
        assert ComputingMode.WLM.visible_tiers == 3

    def test_optimization_levels(self):
        assert ComputingMode.CM.optimization_levels == ("CG",)
        assert ComputingMode.XBM.optimization_levels == ("CG", "MVM")
        assert ComputingMode.WLM.optimization_levels == ("CG", "MVM", "VVM")

    def test_supports(self):
        assert ComputingMode.XBM.supports("MVM")
        assert not ComputingMode.XBM.supports("VVM")


class TestArchitecture:
    def test_mode_gates_tier_access(self):
        arch = jia2021()  # CM
        arch.visible_chip()
        with pytest.raises(ModeError):
            arch.visible_core()
        with pytest.raises(ModeError):
            arch.visible_xb()
        assert jain2021().visible_xb() == jain2021().xb  # WLM sees all

    def test_derived_capacities(self):
        arch = isaac_baseline()
        assert arch.total_crossbars == 768 * 16
        assert arch.core_capacity_bits == 16 * 128 * 128 * 2
        assert arch.chip_capacity_bits == 768 * arch.core_capacity_bits

    def test_with_variants(self):
        arch = isaac_baseline()
        assert arch.with_cores(256).chip.core_number == 256
        assert arch.with_xb_number(8).core.xb_number == 8
        assert arch.with_xb_size((64, 512)).xb.xb_size == (64, 512)
        assert arch.with_parallel_row(4).xb.parallel_row == 4
        # original untouched (frozen dataclasses)
        assert arch.chip.core_number == 768

    def test_with_xb_size_clamps_parallel_row(self):
        arch = isaac_baseline().with_xb_size((4, 128))
        assert arch.xb.parallel_row == 4

    def test_describe_has_paper_fields(self):
        desc = puma().describe()
        assert desc["Chip_tier"]["core_number"] == 138
        assert desc["XB_tier"]["Type"] == "ReRAM"
        assert desc["Computing_Mode"] == "XBM"


class TestPresets:
    def test_table3_baseline(self):
        arch = isaac_baseline()
        assert arch.chip.core_number == 768
        assert arch.core.xb_number == 16
        assert arch.xb.xb_size == (128, 128)
        assert arch.xb.parallel_row == 8
        assert arch.chip.alu_ops == 1024
        assert arch.chip.l0_bw_bits == 384
        assert arch.core.l1_bw_bits == 8192
        assert arch.xb.cell_type is CellType.RERAM
        assert arch.xb.cell_bits == 2

    def test_fig17_jia(self):
        arch = jia2021()
        assert arch.mode is ComputingMode.CM
        assert arch.chip.core_number == 16
        assert arch.xb.xb_size == (1152, 256)
        assert arch.xb.parallel_row == 1152
        assert arch.xb.cell_type is CellType.SRAM

    def test_fig18_puma(self):
        arch = puma()
        assert arch.mode is ComputingMode.XBM
        assert arch.chip.core_number == 138
        assert arch.core.xb_number == 2
        assert arch.chip.l0_size_bits == 96 * 8 * 1024
        assert arch.chip.core_noc.topology == "mesh"

    def test_fig19_jain(self):
        arch = jain2021()
        assert arch.mode is ComputingMode.WLM
        assert arch.xb.xb_size == (256, 64)
        assert arch.xb.parallel_row == 32
        assert arch.xb.adc_bits == 6

    def test_table2_example(self):
        arch = table2_example()
        assert arch.chip.core_number == 2
        assert arch.core.xb_number == 2
        assert arch.xb.xb_size == (32, 128)
        assert arch.xb.parallel_row == 16

    def test_get_preset(self):
        assert get_preset("puma").name == "puma"
        with pytest.raises(KeyError):
            get_preset("nonexistent")
