"""NoC-aware placement: correctness and quality vs the oblivious baseline."""

import pytest

from repro.arch import isaac_baseline, mesh
from repro.errors import ScheduleError
from repro.models import resnet18, tiny_conv
from repro.sched import CIMMLC, CompilerOptions
from repro.sched.placement import (
    annotate_placement,
    place_greedy,
    place_linear,
    placement_cost,
    traffic_bits,
)


def mesh_arch(cores=64):
    """Baseline with a real mesh NoC so hops actually cost something."""
    from dataclasses import replace

    arch = isaac_baseline().with_cores(cores)
    return replace(arch, chip=replace(arch.chip, core_noc=mesh()))


@pytest.fixture(scope="module")
def schedule():
    return CIMMLC(mesh_arch()).schedule(resnet18())


class TestMechanics:
    def test_placements_are_disjoint_and_complete(self, schedule):
        for strategy in (place_linear, place_greedy):
            placement = strategy(schedule)
            used = [c for cores in placement.values() for c in cores]
            assert len(used) == len(set(used))
            for name, cores in placement.items():
                assert len(cores) == schedule.decision(name).cores

    def test_cores_within_chip(self, schedule):
        placement = place_greedy(schedule)
        n = schedule.arch.chip.core_number
        assert all(0 <= c < n for cores in placement.values() for c in cores)

    def test_traffic_bits(self, schedule):
        graph = schedule.graph
        bits = traffic_bits(schedule, "conv1", "bn1")
        assert bits == graph.tensors["conv1_out"].size_bits

    def test_annotate_writes_to_nodes(self, schedule):
        placement = annotate_placement(schedule, strategy="greedy")
        for name, cores in placement.items():
            assert schedule.graph.node(name).annotations["cores_placed"] \
                == cores

    def test_unknown_strategy_rejected(self, schedule):
        with pytest.raises(ScheduleError):
            annotate_placement(schedule, strategy="quantum")

    def test_overfull_segment_rejected(self):
        arch = mesh_arch(cores=64)
        sched = CIMMLC(arch).schedule(resnet18())
        # Corrupt a decision to exceed the chip.
        sched.decision("conv1").dup_cg = 10 ** 4
        with pytest.raises(ScheduleError):
            place_linear(sched)


class TestQuality:
    def test_greedy_beats_or_ties_linear(self, schedule):
        linear = placement_cost(schedule, place_linear(schedule))
        greedy = placement_cost(schedule, place_greedy(schedule))
        assert greedy <= linear * (1 + 1e-9)

    def test_greedy_strictly_wins_on_mesh_resnet(self, schedule):
        """On a duplicated ResNet over a mesh, locality has real value."""
        linear = placement_cost(schedule, place_linear(schedule))
        greedy = placement_cost(schedule, place_greedy(schedule))
        assert greedy < linear

    def test_ideal_noc_cost_is_zero(self):
        sched = CIMMLC(isaac_baseline()).schedule(tiny_conv())
        assert placement_cost(sched, place_linear(sched)) == 0.0

    def test_cost_counts_through_digital_ops(self, schedule):
        """conv -> bn -> relu -> conv chains still contribute edges."""
        from repro.sched.placement import _edges

        edges = _edges(schedule, 0)
        pairs = {(a, b) for a, b, _ in edges}
        assert ("conv1", "layer1_0_conv1") in pairs
