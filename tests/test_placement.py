"""NoC-aware placement: correctness and quality vs the oblivious baseline."""

import pytest

from repro.arch import isaac_baseline, mesh
from repro.errors import ScheduleError
from repro.models import resnet18, tiny_conv
from repro.sched import CIMMLC, CompilerOptions
from repro.sched.placement import (
    annotate_placement,
    place_greedy,
    place_linear,
    placement_cost,
    traffic_bits,
)


def mesh_arch(cores=64):
    """Baseline with a real mesh NoC so hops actually cost something."""
    from dataclasses import replace

    arch = isaac_baseline().with_cores(cores)
    return replace(arch, chip=replace(arch.chip, core_noc=mesh()))


@pytest.fixture(scope="module")
def schedule():
    return CIMMLC(mesh_arch()).schedule(resnet18())


class TestMechanics:
    def test_placements_are_disjoint_and_complete(self, schedule):
        for strategy in (place_linear, place_greedy):
            placement = strategy(schedule)
            used = [c for cores in placement.values() for c in cores]
            assert len(used) == len(set(used))
            for name, cores in placement.items():
                assert len(cores) == schedule.decision(name).cores

    def test_cores_within_chip(self, schedule):
        placement = place_greedy(schedule)
        n = schedule.arch.chip.core_number
        assert all(0 <= c < n for cores in placement.values() for c in cores)

    def test_traffic_bits(self, schedule):
        graph = schedule.graph
        bits = traffic_bits(schedule, "conv1", "bn1")
        assert bits == graph.tensors["conv1_out"].size_bits

    def test_annotate_writes_to_nodes(self, schedule):
        placement = annotate_placement(schedule, strategy="greedy")
        for name, cores in placement.items():
            assert schedule.graph.node(name).annotations["cores_placed"] \
                == cores

    def test_unknown_strategy_rejected(self, schedule):
        with pytest.raises(ScheduleError):
            annotate_placement(schedule, strategy="quantum")

    def test_overfull_segment_rejected(self):
        arch = mesh_arch(cores=64)
        sched = CIMMLC(arch).schedule(resnet18())
        # Corrupt a decision to exceed the chip.
        sched.decision("conv1").dup_cg = 10 ** 4
        with pytest.raises(ScheduleError):
            place_linear(sched)


class TestRegions:
    """Region-constrained placement (multi-tenant spatial partitioning)."""

    @pytest.fixture(scope="class")
    def sub_schedule(self):
        # A schedule compiled for a 16-core sub-chip of a 64-core die.
        return CIMMLC(mesh_arch(cores=16)).schedule(tiny_conv())

    def test_region_confines_placement(self, sub_schedule):
        region = list(range(40, 56))
        for strategy in (place_linear, place_greedy):
            placement = strategy(sub_schedule, region=region)
            used = [c for cores in placement.values() for c in cores]
            assert used and set(used) <= set(region)
            assert len(used) == len(set(used))

    def test_region_cost_uses_physical_hop_matrix(self, sub_schedule):
        # The same sub-chip placed on spread-out cores of a 64-core die
        # must cost more than on one compact block, with both costs
        # computed on the physical 8x8 mesh geometry.
        compact = place_greedy(sub_schedule, region=list(range(16)),
                               die_cores=64)
        spread = place_greedy(sub_schedule,
                              region=[4 * i for i in range(16)],
                              die_cores=64)
        assert placement_cost(sub_schedule, spread, die_cores=64) > \
            placement_cost(sub_schedule, compact, die_cores=64)

    def test_die_geometry_changes_hops(self, sub_schedule):
        # Cores 0..15 on an 8x8 die are two mesh rows, not a 4x4 block:
        # the die-aware cost must differ from the naive 4x4 reading.
        placement = place_linear(sub_schedule, region=list(range(16)))
        naive = placement_cost(sub_schedule, placement)
        physical = placement_cost(sub_schedule, placement, die_cores=64)
        assert naive != physical

    def test_region_validation(self, sub_schedule):
        with pytest.raises(ScheduleError):
            place_linear(sub_schedule, region=[1, 1, 2])      # duplicate
        with pytest.raises(ScheduleError):
            place_linear(sub_schedule, region=[-1, 0, 1])     # negative
        with pytest.raises(ScheduleError):
            place_linear(sub_schedule, region=list(range(4)))  # too small

    def test_default_region_matches_legacy(self, sub_schedule):
        assert place_greedy(sub_schedule) == \
            place_greedy(sub_schedule, region=list(range(16)))

    def test_annotate_with_region(self, sub_schedule):
        region = list(range(8, 24))
        placement = annotate_placement(sub_schedule, strategy="linear",
                                       region=region)
        for name, cores in placement.items():
            assert sub_schedule.graph.node(name).annotations[
                "cores_placed"] == cores
            assert set(cores) <= set(region)


class TestQuality:
    def test_greedy_beats_or_ties_linear(self, schedule):
        linear = placement_cost(schedule, place_linear(schedule))
        greedy = placement_cost(schedule, place_greedy(schedule))
        assert greedy <= linear * (1 + 1e-9)

    def test_greedy_strictly_wins_on_mesh_resnet(self, schedule):
        """On a duplicated ResNet over a mesh, locality has real value."""
        linear = placement_cost(schedule, place_linear(schedule))
        greedy = placement_cost(schedule, place_greedy(schedule))
        assert greedy < linear

    def test_ideal_noc_cost_is_zero(self):
        sched = CIMMLC(isaac_baseline()).schedule(tiny_conv())
        assert placement_cost(sched, place_linear(sched)) == 0.0

    def test_cost_counts_through_digital_ops(self, schedule):
        """conv -> bn -> relu -> conv chains still contribute edges."""
        from repro.sched.placement import _edges

        edges = _edges(schedule, 0)
        pairs = {(a, b) for a, b, _ in edges}
        assert ("conv1", "layer1_0_conv1") in pairs
