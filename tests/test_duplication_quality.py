"""Large-budget greedy duplication vs the exact DP: quality guarantee."""

import pytest
from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro.sched.cg import _min_total_exact, duplicate_min_total
from tests.test_cg import make_profile

medium_instances = st.lists(
    st.tuples(st.integers(1, 200),    # num_mvms
              st.integers(1, 50),     # mvm_cycles
              st.integers(1, 4)),     # cores per replica
    min_size=2, max_size=5,
)


@settings(max_examples=25, deadline=None)
@given(instance=medium_instances)
@example(instance=[(9, 8, 4), (45, 4, 2)])  # stranded-budget regression
def test_greedy_close_to_exact(instance):
    """The jump greedy (used for real chip budgets) stays within 15% of the
    exact DP optimum on budgets just above the exact-DP threshold.

    Greedy over non-uniform core costs is a knapsack relaxation, so a small
    integrality gap is inherent; real chips (hundreds of cores, many ops)
    sit far from these adversarial two-op corner cases.
    """
    profiles = [make_profile(f"op{i}", *params)
                for i, params in enumerate(instance)]
    budget = 65   # first budget on the greedy path
    if sum(p.cores_per_replica for p in profiles) > budget:
        return
    greedy = duplicate_min_total(profiles, budget)
    exact = _min_total_exact(profiles, budget)
    greedy_total = sum(p.latency(greedy[p.name]) for p in profiles)
    exact_total = sum(p.latency(exact[p.name]) for p in profiles)
    assert greedy_total <= exact_total * 1.15 + 1e-9
    assert greedy_total >= exact_total - 1e-9   # exact is a lower bound


def test_exact_dp_uses_leftover_budget_optimally():
    profiles = [make_profile("a", 12, 10), make_profile("b", 12, 10)]
    dups = _min_total_exact(profiles, 8)
    # 12 windows, 8 cores: best split is 4/4 (3 windows each).
    assert dups == {"a": 4, "b": 4}


def test_greedy_handles_single_op_saturation():
    profiles = [make_profile("solo", 10, 5)]
    dups = duplicate_min_total(profiles, 100)
    assert dups["solo"] == 10   # duplication beyond windows is useless
