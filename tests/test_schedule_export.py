"""Schedule JSON export."""

import json

from repro.arch import isaac_baseline
from repro.models import tiny_conv
from repro.sched import CIMMLC


def test_to_dict_is_json_serializable():
    schedule = CIMMLC(isaac_baseline()).schedule(tiny_conv())
    data = schedule.to_dict()
    text = json.dumps(data)     # raises if not serializable
    back = json.loads(text)
    assert back["mode"] == "WLM"
    assert back["levels"] == ["CG", "MVM", "VVM"]
    assert set(back["decisions"]) == {n.name for n in schedule.graph.nodes}


def test_export_reflects_decisions():
    schedule = CIMMLC(isaac_baseline()).schedule(tiny_conv())
    data = schedule.to_dict()
    for name, entry in data["decisions"].items():
        d = schedule.decision(name)
        assert entry["dup_cg"] == d.dup_cg
        assert entry["latency_cycles"] == d.latency()
        assert entry["cores"] == d.cores
