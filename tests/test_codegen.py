"""BNF codegen: emission format and parse round-trip (incl. property test)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import CodegenError
from repro.mops import (
    CustomOp,
    DigitalOp,
    MetaOperatorFlow,
    Mov,
    ParallelBlock,
    ReadCore,
    ReadRow,
    ReadXb,
    WriteRow,
    WriteXb,
    emit,
    parse_flow,
)


class TestEmission:
    def test_readcore_syntax(self):
        flow = MetaOperatorFlow("t", [ReadCore("conv", 0, 0, 3072,
                                               (("stride", 1),))])
        text = emit(flow)
        assert "cim.readcore(type=conv, params={stride:1}, coreaddr=0, " \
            "src=0, dst=3072)" in text

    def test_parallel_braces(self):
        flow = MetaOperatorFlow("t", [ParallelBlock((ReadXb(0), ReadXb(1)))])
        lines = emit(flow).splitlines()
        assert lines[0] == "parallel {"
        assert lines[-1] == "}"

    def test_rowaddr_format_matches_paper(self):
        flow = MetaOperatorFlow("t", [
            WriteRow(0, 0, 16, "A"),
            ReadRow(1, 16, 16),
        ])
        text = emit(flow)
        assert "cim.writerow(rowaddr=xb0_row0~15, value=A)" in text
        assert "cim.readrow(rowaddr=xb1_row16, len=16)" in text

    def test_mov_spaces(self):
        flow = MetaOperatorFlow("t", [Mov(0, 5, 3, "L1", "L0")])
        assert "mov(src=L1:0, dst=L0:5, len=3)" in emit(flow)

    def test_multi_source_dcom(self):
        flow = MetaOperatorFlow("t", [DigitalOp("add", (1, 2), 3, 4)])
        assert "add(src1=1, src2=2, dst=3, len=4)" in emit(flow)


class TestParsing:
    def test_comments_and_blanks_skipped(self):
        flow = parse_flow("// header\n\n# note\nmov(src=L0:0, dst=L1:1, len=2)\n")
        assert len(flow.statements) == 1

    def test_unterminated_parallel_rejected(self):
        with pytest.raises(CodegenError, match="unterminated"):
            parse_flow("parallel {\ncim.readxb(xbaddr=0, len=1)\n")

    def test_unmatched_brace_rejected(self):
        with pytest.raises(CodegenError):
            parse_flow("}\n")

    def test_nested_parallel_rejected(self):
        with pytest.raises(CodegenError):
            parse_flow("parallel {\nparallel {\n}\n}\n")

    def test_garbage_rejected(self):
        with pytest.raises(CodegenError):
            parse_flow("this is not a meta operator\n")

    def test_bad_rowaddr_rejected(self):
        with pytest.raises(CodegenError):
            parse_flow("cim.readrow(rowaddr=banana, len=1)\n")


# ---------------------------------------------------------------------------
# Round-trip property test over randomly generated flows
# ---------------------------------------------------------------------------

_leaf = st.one_of(
    st.builds(ReadXb, xbaddr=st.integers(0, 99), length=st.integers(1, 8)),
    st.builds(WriteXb, xbaddr=st.integers(0, 99),
              mat=st.from_regex(r"[A-Za-z][A-Za-z0-9_]{0,8}",
                                fullmatch=True)),
    st.builds(ReadRow, xbaddr=st.integers(0, 99), row=st.integers(0, 63),
              length=st.integers(1, 16)),
    st.builds(WriteRow, xbaddr=st.integers(0, 99), row=st.integers(0, 63),
              length=st.integers(1, 16),
              value=st.from_regex(r"[A-Za-z][A-Za-z0-9_]{0,8}",
                                  fullmatch=True)),
    st.builds(Mov, src=st.integers(0, 9999), dst=st.integers(0, 9999),
              length=st.integers(1, 512),
              src_space=st.sampled_from(["L0", "L1"]),
              dst_space=st.sampled_from(["L0", "L1"])),
    st.builds(DigitalOp,
              fn=st.sampled_from(["relu", "add", "shiftadd", "gap"]),
              srcs=st.lists(st.integers(0, 999), min_size=1,
                            max_size=3).map(tuple),
              dst=st.integers(0, 999), length=st.integers(1, 64)),
    st.builds(ReadCore,
              op_type=st.sampled_from(["conv", "gemm"]),
              coreaddr=st.integers(0, 9), src=st.integers(0, 999),
              dst=st.integers(0, 999)),
)

_stmt = st.one_of(
    _leaf,
    st.lists(_leaf, min_size=2, max_size=4).map(
        lambda ops: ParallelBlock(tuple(ops))),
)


@given(stmts=st.lists(_stmt, max_size=12))
def test_emit_parse_roundtrip(stmts):
    flow = MetaOperatorFlow("prop", stmts)
    text = emit(flow)
    parsed = parse_flow(text)
    assert emit(parsed) == text
    assert len(parsed.statements) == len(flow.statements)


@given(stmts=st.lists(_leaf, min_size=1, max_size=8))
def test_roundtrip_preserves_statistics(stmts):
    flow = MetaOperatorFlow("prop", stmts)
    parsed = parse_flow(emit(flow))
    assert parsed.stats() == flow.stats()
