"""Design-space exploration engine: spaces, runner, cache, Pareto."""

import json

import pytest

from repro.arch import functional_testbed, isaac_baseline, table2_example
from repro.errors import ArchitectureError
from repro.explore import (
    PointResult,
    SweepPoint,
    SweepRunner,
    SweepSpace,
    apply_variation,
    attribute_bottleneck,
    graph_signature,
    level_series,
    pareto_frontier,
    resolve_variation,
    to_csv,
    to_json,
)
from repro.explore import runner as runner_mod
from repro.models import mlp, tiny_conv
from repro.sched import CompilerOptions


def small_space(core_numbers=(8, 16), series_names=("baseline", "CG")):
    base = functional_testbed()
    return SweepSpace.from_arch_points(
        [(f"cores={n}", base.with_cores(n)) for n in core_numbers],
        mlp(), series=level_series(series_names))


class TestSpace:
    def test_variation_axes_and_aliases(self):
        assert resolve_variation("pr") == "parallel_row"
        assert resolve_variation("xb_number") == "xbs"
        with pytest.raises(ArchitectureError):
            resolve_variation("voltage")
        arch = apply_variation(isaac_baseline(), "cores", "512")
        assert arch.chip.core_number == 512
        arch = apply_variation(isaac_baseline(), "xb_size", "64x512")
        assert arch.xb.xb_size == (64, 512)

    def test_grid_cross_product_and_labels(self):
        space = SweepSpace.grid(
            functional_testbed(), mlp(),
            {"cores": [8, 16], "parallel_row": [4, 8]},
            series=level_series(["CG"]))
        assert len(space) == 4
        assert space.labels() == [
            "cores=8 parallel_row=4", "cores=8 parallel_row=8",
            "cores=16 parallel_row=4", "cores=16 parallel_row=8"]

    def test_level_series_aliases(self):
        series = level_series(["baseline", "VVM", "full"])
        assert [s for s, _ in series] == \
            ["baseline", "CG+MVM+VVM", "CG+MVM+VVM"]
        assert series[0][1] is None
        with pytest.raises(ArchitectureError):
            level_series(["warp-drive"])

    def test_graph_signature_stable_and_sensitive(self):
        assert graph_signature(mlp()) == graph_signature(mlp())
        assert graph_signature(mlp()) != graph_signature(tiny_conv())

    def test_fingerprint_distinguishes_inputs(self):
        arch = functional_testbed()
        a = SweepPoint("p", "CG", arch, mlp(), CompilerOptions(max_level="CG"))
        b = SweepPoint("p", "CG", arch, mlp(), CompilerOptions(max_level="CG"))
        assert a.fingerprint() == b.fingerprint()
        c = SweepPoint("p", "full", arch, mlp(), CompilerOptions())
        d = SweepPoint("p", "CG", arch.with_cores(8), mlp(),
                       CompilerOptions(max_level="CG"))
        e = SweepPoint("p", "base", arch, mlp(), None)
        fingerprints = {p.fingerprint() for p in (a, c, d, e)}
        assert len(fingerprints) == 4


class TestRunnerCache:
    def test_cache_miss_then_hit_with_zero_compiles(self, tmp_path,
                                                    monkeypatch):
        space = small_space()
        runner = SweepRunner(cache_dir=str(tmp_path))
        first = runner.run(space)
        assert first.cache_misses == len(space) and first.cache_hits == 0
        assert not first.all_cached

        calls = []
        real = runner_mod.evaluate_point
        monkeypatch.setattr(runner_mod, "evaluate_point",
                            lambda p: calls.append(p) or real(p))
        second = SweepRunner(cache_dir=str(tmp_path)).run(small_space())
        assert calls == []                      # zero compiles on re-run
        assert second.all_cached
        assert second.cache_hits == len(space) and second.cache_misses == 0
        assert [r.summary for r in second] == [r.summary for r in first]
        assert all(r.cached for r in second)

    def test_overlapping_sweep_partially_cached(self, tmp_path):
        runner = SweepRunner(cache_dir=str(tmp_path))
        runner.run(small_space(core_numbers=(8,)))
        overlap = runner.run(small_space(core_numbers=(8, 16)))
        assert overlap.cache_hits == 2 and overlap.cache_misses == 2

    def test_no_cache_dir_always_computes(self):
        runner = SweepRunner()
        assert runner.cache is None
        result = runner.run(small_space(core_numbers=(8,)))
        assert result.cache_hits == 0 and result.cache_misses == 2

    def test_corrupt_cache_entry_recomputed(self, tmp_path):
        runner = SweepRunner(cache_dir=str(tmp_path))
        runner.run(small_space(core_numbers=(8,)))
        for f in (tmp_path / f"v{runner_mod.CACHE_VERSION}").glob("*.json"):
            f.write_text("{not json")
        again = SweepRunner(cache_dir=str(tmp_path)).run(
            small_space(core_numbers=(8,)))
        assert again.cache_misses == 2

    def test_parallel_equals_serial(self, tmp_path):
        space = small_space(core_numbers=(8, 16, 32),
                            series_names=("baseline", "CG", "VVM"))
        serial = SweepRunner(workers=1).run(space)
        parallel = SweepRunner(workers=2).run(
            small_space(core_numbers=(8, 16, 32),
                        series_names=("baseline", "CG", "VVM")))
        assert [r.label for r in serial] == [r.label for r in parallel]
        assert [r.summary for r in serial] == [r.summary for r in parallel]
        assert serial.speedups() == parallel.speedups()

    def test_workers_validation(self):
        with pytest.raises(ValueError):
            SweepRunner(workers=0)

    def test_speedups_shape(self):
        result = SweepRunner().run(small_space(core_numbers=(8,)))
        speedups = result.speedups()
        assert list(speedups) == ["cores=8"]
        assert list(speedups["cores=8"]) == ["CG"]
        assert speedups["cores=8"]["CG"] >= 1.0

    def test_speedups_require_baseline(self):
        result = SweepRunner().run(
            small_space(core_numbers=(8,), series_names=("CG",)))
        with pytest.raises(KeyError, match="no 'baseline' series"):
            result.speedups()

    def test_version_in_fingerprint(self, monkeypatch):
        point = SweepPoint("p", "CG", functional_testbed(), mlp(),
                           CompilerOptions(max_level="CG"))
        before = point.fingerprint()
        import repro
        monkeypatch.setattr(repro, "__version__", "0.0.0-test")
        assert point.fingerprint() != before   # version bump busts the cache


def _fake_result(label, cycles, power):
    point = SweepPoint(label, "CG", table2_example(), mlp(),
                       CompilerOptions(max_level="CG"))
    return PointResult(point, {
        "total_cycles": cycles, "peak_power": power,
        "compute_cycles": cycles, "reconfiguration_cycles": 0.0,
        "noc_cycles": 0.0, "schedule_levels": ["CG"], "segments": []})


class TestPareto:
    def test_frontier_on_hand_built_points(self):
        # (cycles, power): b dominates a; c and d trade off; e is dominated.
        a = _fake_result("a", 100.0, 10.0)
        b = _fake_result("b", 90.0, 9.0)
        c = _fake_result("c", 50.0, 20.0)
        d = _fake_result("d", 200.0, 1.0)
        e = _fake_result("e", 210.0, 1.5)
        frontier = pareto_frontier([a, b, c, d, e])
        assert [r.label for r in frontier] == ["b", "c", "d"]

    def test_duplicate_points_all_kept(self):
        a = _fake_result("a", 10.0, 1.0)
        b = _fake_result("b", 10.0, 1.0)
        assert len(pareto_frontier([a, b])) == 2

    def test_single_objective(self):
        a = _fake_result("a", 10.0, 99.0)
        b = _fake_result("b", 20.0, 1.0)
        frontier = pareto_frontier([a, b], objectives=("total_cycles",))
        assert [r.label for r in frontier] == ["a"]

    def test_attribution_shares_and_dominant(self):
        summary = {
            "total_cycles": 100.0, "compute_cycles": 40.0,
            "reconfiguration_cycles": 60.0, "noc_cycles": 10.0,
            "segments": [
                {"bottleneck": "conv1", "cycles": 50.0,
                 "reconfiguration": 30.0, "bottleneck_cycles": 20.0,
                 "index": 0},
                {"bottleneck": "conv1", "cycles": 50.0,
                 "reconfiguration": 30.0, "bottleneck_cycles": 20.0,
                 "index": 1},
            ],
        }
        attr = attribute_bottleneck(summary)
        assert attr["dominant"] == "reconfiguration"
        assert attr["shares"]["reconfiguration"] == pytest.approx(0.6)
        assert attr["bottleneck_ops"] == ["conv1"]
        assert attr["segments"] == 2

    def test_attribution_noc_dominant(self):
        summary = {"total_cycles": 160.0, "compute_cycles": 50.0,
                   "reconfiguration_cycles": 60.0, "noc_cycles": 100.0,
                   "segments": []}
        assert attribute_bottleneck(summary)["dominant"] == "noc"

    def test_attribution_on_real_sweep(self):
        result = SweepRunner().run(small_space(core_numbers=(8,)))
        for r in result:
            attr = attribute_bottleneck(r.summary)
            assert attr["dominant"] in ("compute", "reconfiguration", "noc")
            assert 0.0 <= attr["shares"]["compute"]


class TestReport:
    def test_csv_round_trip(self):
        result = SweepRunner().run(small_space(core_numbers=(8,)))
        text = to_csv(result)
        lines = text.strip().splitlines()
        assert len(lines) == 1 + len(result)
        assert lines[0].startswith("label,series,arch,model,levels,cached")

    def test_csv_with_pareto_column(self):
        result = SweepRunner().run(small_space(core_numbers=(8,)))
        lines = to_csv(result, pareto=True).strip().splitlines()
        assert lines[0].endswith(",pareto")
        assert any(line.endswith(",True") for line in lines[1:])

    def test_json_with_pareto_flags(self):
        result = SweepRunner().run(small_space(core_numbers=(8,)))
        doc = json.loads(to_json(result, pareto=True))
        assert doc["cache"] == {"hits": 0, "misses": 2, "all_cached": False}
        assert len(doc["points"]) == 2
        assert any(p["pareto"] for p in doc["points"])
        for p in doc["points"]:
            assert p["total_cycles"] > 0
