"""Golden regression: the explore-engine refactor reproduces the seed.

The values below were captured from the pre-refactor serial
implementations of ``fig22a_cores`` (ViT-Tiny) and ``table1`` at the seed
commit.  The refactored drivers — serial, parallel, and cache-replayed —
must reproduce them bit-for-bit (the sweep engine changes *how* points
run, never *what* they compute).
"""

import pytest

from repro.experiments import fig22a_cores, table1
from repro.explore import SweepRunner
from repro.models import vit_tiny

#: fig22a_cores(graph=vit_tiny()) at the seed commit (serial loop).
FIG22A_VIT_TINY_GOLDEN = {
    "cores=256 CG": 69.72363916915529,
    "cores=256 CG+MVM": 123.25215106395471,
    "cores=256 CG+MVM+VVM": 199.06489345869522,
    "cores=512 CG": 169.5534296617055,
    "cores=512 CG+MVM": 220.07782794604796,
    "cores=512 CG+MVM+VVM": 291.1496287531451,
    "cores=768 CG": 262.4262258943778,
    "cores=768 CG+MVM": 338.91775317390955,
    "cores=768 CG+MVM+VVM": 409.6453641907684,
    "cores=1024 CG": 277.48145646740863,
    "cores=1024 CG+MVM": 341.3213369161792,
    "cores=1024 CG+MVM+VVM": 412.24954756116296,
}

#: table1() at the seed commit.
TABLE1_GOLDEN = {
    "device SRAM supported": 1.0,
    "device ReRAM supported": 1.0,
    "device MISC (FLASH) supported": 1.0,
    "interface CM supported": 1.0,
    "interface XBM supported": 1.0,
    "interface WLM supported": 1.0,
    "optimization granularities": 3,
}


class TestFig22aGolden:
    def test_serial_matches_seed(self):
        measured = fig22a_cores(graph=vit_tiny()).as_dict()
        assert list(measured) == list(FIG22A_VIT_TINY_GOLDEN)  # row order
        for label, value in FIG22A_VIT_TINY_GOLDEN.items():
            assert measured[label] == pytest.approx(value, rel=1e-12), label

    def test_cached_replay_matches_seed(self, tmp_path):
        runner = SweepRunner(cache_dir=str(tmp_path))
        first = fig22a_cores(core_numbers=(256, 512), graph=vit_tiny(),
                             runner=runner).as_dict()
        replay = fig22a_cores(core_numbers=(256, 512), graph=vit_tiny(),
                              runner=SweepRunner(cache_dir=str(tmp_path)))
        # The JSON round-trip through the cache must be value-exact.
        assert replay.as_dict() == first
        for label, value in replay.as_dict().items():
            assert value == pytest.approx(
                FIG22A_VIT_TINY_GOLDEN[label], rel=1e-12), label

    def test_parallel_matches_seed(self):
        measured = fig22a_cores(core_numbers=(256, 512), graph=vit_tiny(),
                                runner=SweepRunner(workers=2)).as_dict()
        for label, value in measured.items():
            assert value == pytest.approx(
                FIG22A_VIT_TINY_GOLDEN[label], rel=1e-12), label


class TestTable1Golden:
    def test_matches_seed(self):
        result = table1()
        assert result.as_dict() == TABLE1_GOLDEN
        assert [r.label for r in result.rows] == list(TABLE1_GOLDEN)
