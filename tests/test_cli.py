"""CLI: every subcommand runs and prints sensible output."""

import json
import os
import re

import pytest

import repro
from repro.cli import MODELS, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_preset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["describe", "imaginary-chip"])

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert f"repro {repro.__version__}" in capsys.readouterr().out

    def test_sweep_help(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["sweep", "--help"])
        assert exc.value.code == 0
        out = capsys.readouterr().out
        for flag in ("--model", "--preset", "--vary", "--workers",
                     "--cache-dir", "--format"):
            assert flag in out

    def test_help_names_every_documented_subcommand(self, capsys):
        """Docs-drift guard: the `## repro X` sections of docs/CLI.md and
        the subcommand list `repro --help` advertises must coincide."""
        doc_path = os.path.join(os.path.dirname(__file__), os.pardir,
                                "docs", "CLI.md")
        with open(doc_path) as fh:
            documented = set(re.findall(r"^## `repro (\w+)`", fh.read(),
                                        re.MULTILINE))
        assert documented, "docs/CLI.md lists no subcommands"
        with pytest.raises(SystemExit):
            main(["--help"])
        help_text = capsys.readouterr().out
        match = re.search(r"\{([\w,]+)\}", help_text)
        assert match, "repro --help shows no subcommand list"
        actual = set(match.group(1).split(","))
        assert actual == documented, \
            f"docs/CLI.md drift: undocumented {sorted(actual - documented)}, " \
            f"stale {sorted(documented - actual)}"


class TestCommands:
    def test_presets(self, capsys):
        main(["presets"])
        out = capsys.readouterr().out
        assert "isaac-baseline" in out and "puma" in out

    def test_models(self, capsys):
        main(["models"])
        out = capsys.readouterr().out
        assert "resnet18" in out and "vit-base" in out

    def test_describe(self, capsys):
        main(["describe", "puma"])
        out = capsys.readouterr().out
        assert '"core_number": 138' in out
        assert '"Computing_Mode": "XBM"' in out

    def test_compile_small_model(self, capsys):
        main(["compile", "--arch", "functional-testbed",
              "--model", "tiny-conv", "--ablation"])
        out = capsys.readouterr().out
        assert "CIM-MLC" in out
        assert "up to CG" in out

    def test_compile_unknown_model(self):
        with pytest.raises(SystemExit, match="unknown model"):
            main(["compile", "--model", "skynet"])

    def test_codegen_conv_relu(self, capsys):
        main(["codegen", "--arch", "table2-example",
              "--model", "conv-relu", "--max-lines", "10"])
        out = capsys.readouterr().out
        assert "more lines" in out

    def test_schedule_flag(self, capsys):
        main(["compile", "--arch", "functional-testbed",
              "--model", "mlp", "--schedule"])
        out = capsys.readouterr().out
        assert "segment 0" in out

    def test_model_zoo_entries_buildable(self):
        for name, factory in MODELS.items():
            if name in ("mlp", "tiny-conv", "conv-relu", "lenet", "vgg7"):
                graph = factory()
                assert len(graph.nodes) > 0


class TestSweep:
    ARGS = ["sweep", "--model", "mlp", "--preset", "functional",
            "--vary", "cores=8,16", "--levels", "baseline,CG"]

    def test_table_format(self, capsys):
        main(self.ARGS + ["--no-cache"])
        out = capsys.readouterr().out
        assert "cores=8 CG" in out and "cores=16 CG" in out

    def test_json_then_cache_hits(self, tmp_path, capsys):
        cache = ["--cache-dir", str(tmp_path), "--format", "json"]
        main(self.ARGS + cache)
        first = json.loads(capsys.readouterr().out)
        assert first["cache"] == {"hits": 0, "misses": 4,
                                  "all_cached": False}
        main(self.ARGS + cache)
        second = json.loads(capsys.readouterr().out)
        assert second["cache"]["all_cached"]
        assert all(p["cached"] for p in second["points"])
        assert [p["total_cycles"] for p in second["points"]] == \
            [p["total_cycles"] for p in first["points"]]

    def test_csv_format(self, capsys):
        main(self.ARGS + ["--no-cache", "--format", "csv"])
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines[0].startswith("label,series")
        assert len(lines) == 5   # header + 2 points x 2 series

    def test_underscore_model_and_preset_prefix(self, capsys):
        main(["sweep", "--model", "tiny_conv", "--preset", "functional",
              "--vary", "cores=8", "--levels", "CG", "--no-cache"])
        assert "cores=8" in capsys.readouterr().out

    def test_pareto_flag(self, capsys):
        main(self.ARGS + ["--no-cache", "--pareto"])
        assert "pareto frontier" in capsys.readouterr().out

    def test_workers_zero_rejected(self):
        with pytest.raises(SystemExit, match="--workers must be"):
            main(self.ARGS + ["--workers", "0", "--no-cache"])

    def test_bad_vary_spec(self):
        with pytest.raises(SystemExit, match="--vary expects"):
            main(["sweep", "--model", "mlp", "--preset", "functional",
                  "--vary", "cores", "--no-cache"])

    def test_unknown_axis(self):
        with pytest.raises(SystemExit, match="unknown sweep axis"):
            main(["sweep", "--model", "mlp", "--preset", "functional",
                  "--vary", "voltage=1,2", "--no-cache"])

    def test_ambiguous_preset(self):
        with pytest.raises(SystemExit, match="unknown preset"):
            main(["sweep", "--model", "mlp", "--preset", "j",
                  "--no-cache"])


class TestShard:
    ARGS = ["shard", "--arch", "isaac-baseline", "--model", "lenet",
            "--chips", "2"]

    def test_shard_help(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["shard", "--help"])
        assert exc.value.code == 0
        out = capsys.readouterr().out
        for flag in ("--chips", "--topology", "--link-bw", "--link-latency",
                     "--baseline", "--format"):
            assert flag in out

    def test_table_output(self, capsys):
        main(self.ARGS)
        out = capsys.readouterr().out
        assert "chip 0" in out and "chip 1" in out
        assert "steady-state interval" in out

    def test_baseline_comparison(self, capsys):
        main(self.ARGS + ["--baseline"])
        assert "vs 1 chip" in capsys.readouterr().out

    def test_json_output(self, capsys):
        main(self.ARGS + ["--format", "json"])
        doc = json.loads(capsys.readouterr().out)
        assert doc["system"]["num_chips"] == 2
        assert len(doc["stages"]) == 2
        assert doc["pipeline"]["throughput"] > 0

    def test_infeasible_sharding_exits(self):
        # vgg7's conv2 alone exceeds a jain2021 macro — a clean CLI error,
        # not a traceback.
        with pytest.raises(SystemExit, match="exceeds one jain2021 chip"):
            main(["shard", "--arch", "jain2021", "--model", "vgg7",
                  "--chips", "1"])

    def test_sweep_chips_axis(self, capsys):
        main(["sweep", "--model", "lenet", "--preset", "isaac-baseline",
              "--vary", "chips=1,2", "--levels", "CG", "--no-cache"])
        out = capsys.readouterr().out
        assert "chips=1 CG" in out and "chips=2 CG" in out


class TestServe:
    ARGS = ["serve", "--arch", "functional-testbed",
            "--tenants", "lenet:2,mlp", "--rate", "500",
            "--requests", "80", "--batch", "timeout:4:2000"]

    def test_serve_help(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["serve", "--help"])
        assert exc.value.code == 0
        out = capsys.readouterr().out
        for flag in ("--tenants", "--mode", "--trace", "--rate", "--rates",
                     "--batch", "--slo-factor", "--max-queue"):
            assert flag in out

    def test_both_modes_table(self, capsys):
        main(self.ARGS)
        out = capsys.readouterr().out
        assert "mode=spatial" in out and "mode=temporal" in out
        assert "p99: spatial" in out
        assert "lenet" in out and "mlp" in out

    def test_single_mode_json(self, capsys):
        main(self.ARGS + ["--mode", "temporal", "--format", "json"])
        doc = json.loads(capsys.readouterr().out)
        assert set(doc) == {"temporal"}
        report = doc["temporal"]
        assert report["completed"] == 80
        assert report["switch_cycles"] > 0
        assert {t["tenant"] for t in report["tenants"]} == {"lenet", "mlp"}

    def test_duplicate_models_get_unique_names(self, capsys):
        main(["serve", "--arch", "functional-testbed",
              "--tenants", "mlp,mlp", "--mode", "temporal", "--rate", "500",
              "--requests", "40", "--format", "json"])
        doc = json.loads(capsys.readouterr().out)
        names = {t["tenant"] for t in doc["temporal"]["tenants"]}
        assert names == {"mlp", "mlp#2"}

    def test_rates_capacity_sweep(self, tmp_path, capsys):
        main(self.ARGS + ["--rates", "200,500",
                          "--cache-dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert "spatial p99" in out and "temporal p99" in out
        assert "200.00" in out and "500.00" in out

    def test_bad_batch_policy(self):
        with pytest.raises(SystemExit, match="bad batch policy"):
            main(self.ARGS[:-2] + ["--batch", "warp:9"])

    def test_bad_tenant_spec(self):
        with pytest.raises(SystemExit, match="bad tenant spec"):
            main(["serve", "--tenants", "mlp:heavy"])

    def test_unknown_model_in_tenants(self):
        with pytest.raises(SystemExit, match="unknown model"):
            main(["serve", "--arch", "functional-testbed",
                  "--tenants", "skynet", "--requests", "10"])

    def test_sharded_mode(self, capsys):
        main(["serve", "--arch", "functional-testbed",
              "--tenants", "lenet:2,mlp", "--mode", "sharded",
              "--chips", "4", "--rate", "500", "--requests", "40",
              "--batch", "timeout:4:2000", "--format", "json"])
        doc = json.loads(capsys.readouterr().out)
        report = doc["sharded"]
        assert report["completed"] == 40
        assert report["switch_cycles"] == 0

    def test_sharded_rejects_rates_sweep(self):
        with pytest.raises(SystemExit, match="spatial/temporal"):
            main(["serve", "--arch", "functional-testbed",
                  "--tenants", "lenet", "--mode", "sharded",
                  "--rates", "100,200"])


class TestTrace:
    def test_record_analyze_whatif_roundtrip(self, tmp_path, capsys):
        path = str(tmp_path / "trace.json")
        chrome = str(tmp_path / "chrome.json")
        main(["trace", "record", "--kind", "shard", "--model", "vgg7",
              "--chips", "3", "--out", path, "--chrome", chrome])
        out = capsys.readouterr().out
        assert "recorded shard trace" in out

        main(["trace", "analyze", path])
        out = capsys.readouterr().out
        assert "critical path" in out and "dominant" in out

        main(["trace", "whatif", path, "--mutate", "link_bw=0.25",
              "--format", "json"])
        doc = json.loads(capsys.readouterr().out)
        assert doc["mutation"] == "link_bw=0.25"
        assert doc["replayed"]["total_cycles"] > \
            doc["recorded"]["total_cycles"]

        with open(chrome) as fh:
            assert json.load(fh)["traceEvents"]

    def test_identity_whatif_reports_digest_match(self, tmp_path, capsys):
        path = str(tmp_path / "sim.json")
        main(["trace", "record", "--kind", "sim", "--model", "lenet",
              "--arch", "functional-testbed", "--out", path])
        capsys.readouterr()
        main(["trace", "whatif", path])
        assert "identity replay digest match: True" in \
            capsys.readouterr().out

    def test_serve_record_json(self, capsys):
        main(["trace", "record", "--kind", "serve", "--arch",
              "functional-testbed", "--tenants", "lenet:2,mlp",
              "--requests", "30", "--rate", "500",
              "--batch", "timeout:4:2000", "--format", "json"])
        doc = json.loads(capsys.readouterr().out)
        assert doc["kind"] == "serve"
        assert doc["meta"]["completed"] == 30
        assert doc["spans"] > 0

    def test_bad_mutation_exits(self, tmp_path, capsys):
        path = str(tmp_path / "sim.json")
        main(["trace", "record", "--kind", "sim", "--model", "lenet",
              "--arch", "functional-testbed", "--out", path])
        capsys.readouterr()
        with pytest.raises(SystemExit, match="unknown mutation key"):
            main(["trace", "whatif", path, "--mutate", "warp=9"])

    def test_missing_trace_file_exits(self):
        with pytest.raises(SystemExit, match="cannot load trace"):
            main(["trace", "analyze", "/nonexistent/trace.json"])

    def test_sweep_prefilter_replay(self, capsys):
        main(["sweep", "--model", "lenet", "--preset", "isaac-baseline",
              "--vary", "chips=2,3", "--vary", "link_bw=16,256",
              "--levels", "CG", "--no-cache", "--prefilter", "replay",
              "--format", "json"])
        doc = json.loads(capsys.readouterr().out)
        assert doc["stats"]["total_points"] == 4
        assert doc["stats"]["full_evaluations"] < 4
        assert doc["frontier"]


class TestCache:
    def _populate(self, root):
        from repro.arch import functional_testbed
        from repro.models import mlp
        from repro.perf import DiskCompileCache
        from repro.sched import CIMMLC

        CIMMLC(functional_testbed(),
               cache=DiskCompileCache(root)).compile(mlp())

    def test_stats_empty_store(self, tmp_path, capsys):
        main(["cache", "stats", "--dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert str(tmp_path) in out and "empty" in out

    def test_stats_and_clear_roundtrip(self, tmp_path, capsys):
        self._populate(str(tmp_path))
        main(["cache", "stats", "--dir", str(tmp_path), "--format",
              "json"])
        doc = json.loads(capsys.readouterr().out)
        assert doc["total_entries"] > 0 and doc["size_bytes"] > 0
        assert set(doc["entries"]) >= {"profiles", "dups", "segments"}
        main(["cache", "clear", "--dir", str(tmp_path)])
        assert "cleared" in capsys.readouterr().out
        main(["cache", "stats", "--dir", str(tmp_path), "--format",
              "json"])
        assert json.loads(capsys.readouterr().out)["total_entries"] == 0

    def test_requires_action(self):
        with pytest.raises(SystemExit):
            main(["cache"])
