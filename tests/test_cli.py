"""CLI: every subcommand runs and prints sensible output."""

import pytest

from repro.cli import MODELS, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_preset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["describe", "imaginary-chip"])


class TestCommands:
    def test_presets(self, capsys):
        main(["presets"])
        out = capsys.readouterr().out
        assert "isaac-baseline" in out and "puma" in out

    def test_models(self, capsys):
        main(["models"])
        out = capsys.readouterr().out
        assert "resnet18" in out and "vit-base" in out

    def test_describe(self, capsys):
        main(["describe", "puma"])
        out = capsys.readouterr().out
        assert '"core_number": 138' in out
        assert '"Computing_Mode": "XBM"' in out

    def test_compile_small_model(self, capsys):
        main(["compile", "--arch", "functional-testbed",
              "--model", "tiny-conv", "--ablation"])
        out = capsys.readouterr().out
        assert "CIM-MLC" in out
        assert "up to CG" in out

    def test_compile_unknown_model(self):
        with pytest.raises(SystemExit, match="unknown model"):
            main(["compile", "--model", "skynet"])

    def test_codegen_conv_relu(self, capsys):
        main(["codegen", "--arch", "table2-example",
              "--model", "conv-relu", "--max-lines", "10"])
        out = capsys.readouterr().out
        assert "more lines" in out

    def test_schedule_flag(self, capsys):
        main(["compile", "--arch", "functional-testbed",
              "--model", "mlp", "--schedule"])
        out = capsys.readouterr().out
        assert "segment 0" in out

    def test_model_zoo_entries_buildable(self):
        for name, factory in MODELS.items():
            if name in ("mlp", "tiny-conv", "conv-relu", "lenet", "vgg7"):
                graph = factory()
                assert len(graph.nodes) > 0
