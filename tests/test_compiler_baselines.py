"""Compiler facade, options, and baseline schedulers."""

import pytest

from repro.arch import (
    ComputingMode,
    isaac_baseline,
    jain2021,
    jia2021,
    puma,
)
from repro.errors import ScheduleError
from repro.models import conv_relu_example, resnet18, tiny_conv
from repro.sched import (
    CIMMLC,
    CompilerOptions,
    capability_matrix,
    no_optimization,
    poly_schedule,
    puma_schedule,
    vendor_schedule,
)


class TestOptions:
    def test_bad_level_rejected(self):
        with pytest.raises(ScheduleError):
            CompilerOptions(max_level="XXL")

    def test_levels_follow_mode(self):
        graph = conv_relu_example()
        assert CIMMLC(jia2021()).levels() == ("CG",)
        assert CIMMLC(puma()).levels() == ("CG", "MVM")
        assert CIMMLC(jain2021()).levels() == ("CG", "MVM", "VVM")

    def test_max_level_truncates(self):
        assert CIMMLC(jain2021(),
                      CompilerOptions(max_level="CG")).levels() == ("CG",)
        assert CIMMLC(jain2021(),
                      CompilerOptions(max_level="MVM")).levels() == \
            ("CG", "MVM")

    def test_max_level_beyond_mode_ignored(self):
        # Asking a CM chip for VVM yields only what the mode exposes.
        assert CIMMLC(jia2021(),
                      CompilerOptions(max_level="VVM")).levels() == ("CG",)


class TestCompile:
    def test_schedule_levels_recorded(self):
        result = CIMMLC(isaac_baseline()).compile(conv_relu_example())
        assert tuple(result.schedule.levels) == ("CG", "MVM", "VVM")
        assert result.total_cycles > 0
        assert result.peak_power > 0

    def test_compile_is_deterministic(self):
        arch = isaac_baseline()
        graph = resnet18()
        a = CIMMLC(arch).compile(graph).total_cycles
        b = CIMMLC(arch).compile(graph).total_cycles
        assert a == b

    def test_optimized_beats_baseline(self):
        arch = isaac_baseline()
        graph = resnet18()
        base = no_optimization(graph, arch)
        ours = CIMMLC(arch).compile(graph)
        assert ours.total_cycles < base.total_cycles

    def test_resources_valid_on_every_preset(self):
        graph = tiny_conv()
        for arch in (isaac_baseline(), puma(), jia2021(), jain2021()):
            result = CIMMLC(arch).compile(graph)
            result.schedule.validate_resources()


class TestBaselines:
    def test_no_optimization_is_sequential_single_replica(self):
        sched = no_optimization(conv_relu_example(),
                                isaac_baseline()).schedule
        assert not sched.pipelined
        assert all(d.dup == 1 for d in sched.decisions.values())

    def test_vendor_is_alias(self):
        graph = conv_relu_example()
        arch = isaac_baseline()
        assert vendor_schedule(graph, arch).total_cycles == \
            no_optimization(graph, arch).total_cycles

    def test_puma_schedule_pipelines_without_stagger(self):
        result = puma_schedule(conv_relu_example(), puma())
        assert result.schedule.pipelined
        assert all(not d.mvm_pipelined
                   for d in result.schedule.decisions.values())

    def test_poly_schedule_between_baseline_and_ours(self):
        graph = resnet18()
        arch = isaac_baseline()
        base = no_optimization(graph, arch).total_cycles
        poly = poly_schedule(graph, arch).total_cycles
        ours = CIMMLC(arch).compile(graph).total_cycles
        assert ours < poly < base

    def test_poly_schedule_respects_budget(self):
        result = poly_schedule(resnet18(), isaac_baseline())
        result.schedule.validate_resources()


class TestCapabilityMatrix:
    def test_table1_claims(self):
        caps = capability_matrix()
        assert set(caps["modes"]) == {"CM", "XBM", "WLM"}
        assert "SRAM" in caps["devices"] and "ReRAM" in caps["devices"]
        assert "FLASH" in caps["devices"]          # the MISC column
        assert caps["optimization_granularity"] == \
            ["VVM", "MVM", "DNN Operators"]
