"""Every example script runs to completion (smoke level)."""

import runpy
import sys

import pytest

EXAMPLES_FAST = [
    "examples/codegen_conv_relu.py",
    "examples/functional_verification.py",
    "examples/custom_hardware_ops.py",
]


@pytest.mark.parametrize("script", EXAMPLES_FAST)
def test_example_runs(script, capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", [script])
    runpy.run_path(script, run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip()   # produced some report


def test_quickstart_runs(capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", ["examples/quickstart.py"])
    runpy.run_path("examples/quickstart.py", run_name="__main__")
    out = capsys.readouterr().out
    assert "CIM-MLC" in out
    assert "speedup" in out
