"""Every example script runs to completion (smoke level)."""

import runpy
import sys

import pytest

EXAMPLES_FAST = [
    "examples/codegen_conv_relu.py",
    "examples/functional_verification.py",
    "examples/custom_hardware_ops.py",
]


@pytest.mark.parametrize("script", EXAMPLES_FAST)
def test_example_runs(script, capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", [script])
    runpy.run_path(script, run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip()   # produced some report


def test_serve_example_runs(capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", ["examples/serve_multi_tenant.py",
                                      "--requests", "120"])
    runpy.run_path("examples/serve_multi_tenant.py", run_name="__main__")
    out = capsys.readouterr().out
    assert "p99 speedup of partitioning" in out
    assert "mode=spatial" in out and "mode=temporal" in out


def test_shard_example_runs(capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", ["examples/shard_pipeline.py"])
    runpy.run_path("examples/shard_pipeline.py", run_name="__main__")
    out = capsys.readouterr().out
    assert "chips=2" in out and "chips=3" in out
    assert "steady-state interval" in out


def test_energy_pareto_example_runs(capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", ["examples/energy_pareto.py"])
    runpy.run_path("examples/energy_pareto.py", run_name="__main__")
    out = capsys.readouterr().out
    assert "latency x energy x area" in out
    assert "pareto" in out and "uncapped" in out and "budget" in out


def test_fleet_autoscale_example_runs(capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", ["examples/fleet_autoscale.py",
                                      "--requests", "2000",
                                      "--replicas", "4"])
    runpy.run_path("examples/fleet_autoscale.py", run_name="__main__")
    out = capsys.readouterr().out
    assert "scale events" in out
    assert "autoscaled vs static fleet" in out
    assert "deployment energy" in out


def test_quickstart_runs(capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", ["examples/quickstart.py"])
    runpy.run_path("examples/quickstart.py", run_name="__main__")
    out = capsys.readouterr().out
    assert "CIM-MLC" in out
    assert "speedup" in out


def test_trace_whatif_example_runs(capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", ["examples/trace_whatif.py"])
    runpy.run_path("examples/trace_whatif.py", run_name="__main__")
    out = capsys.readouterr().out
    assert "identity replay == recording: True" in out
    assert "replay matches exactly" in out
    assert "what-if timeout=" in out


def test_fault_degradation_example_runs(capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", ["examples/fault_degradation.py",
                                      "--requests", "200",
                                      "--kill", "16"])
    runpy.run_path("examples/fault_degradation.py", run_name="__main__")
    out = capsys.readouterr().out
    assert "bit-identical to fault-free: True" in out
    assert "avoid every one: True" in out
    assert "availability" in out
    assert "drift rewrites" in out
