"""Fuzzing the full value path: random nets -> flows -> machine == reference.

This is the strongest property in the repository: for randomly generated
convolutional networks with random integer weights, the compiled
meta-operator program executed on the machine model reproduces the numpy
reference bit-for-bit, in every computing mode.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import ComputingMode, functional_testbed
from repro.graph import GraphBuilder
from repro.quant import random_input, random_weights
from repro.sched import CIMMLC
from repro.sched.lowering import lower_to_flow
from repro.sim.functional import CIMMachine
from repro.sim.reference import ReferenceExecutor


@st.composite
def small_net(draw):
    b = GraphBuilder("fuzz")
    h = draw(st.sampled_from([4, 5, 6]))
    cin = draw(st.integers(1, 3))
    x = b.input("x", (1, cin, h, h))
    for i in range(draw(st.integers(1, 2))):
        x = b.conv(x, draw(st.integers(1, 4)), kernel=3, padding=1,
                   name=f"conv{i}")
        if draw(st.booleans()):
            x = b.relu(x, name=f"relu{i}")
    x = b.flatten(x)
    x = b.gemm(x, draw(st.integers(1, 4)), name="head")
    return b.build([x])


@settings(max_examples=10, deadline=None)
@given(graph=small_net(),
       mode=st.sampled_from(list(ComputingMode)),
       seed=st.integers(0, 1000))
def test_random_nets_execute_exactly(graph, mode, seed):
    arch = functional_testbed(mode)
    weights = random_weights(graph, seed=seed, low=-3, high=3)
    inputs = random_input(graph, seed=seed + 1)
    program = lower_to_flow(CIMMLC(arch).schedule(graph), weights)
    machine = CIMMachine(arch)
    machine.run(program, inputs)
    reference = ReferenceExecutor(graph, weights).run(inputs)
    out = graph.outputs[0]
    got = machine.read_tensor(program, out, reference[out].shape)
    assert np.array_equal(got, reference[out].astype(np.float64))
