"""Fleet subsystem: plans, routers, admission, autoscaling, determinism."""

import json

import pytest

from repro.arch import ChipLink, functional_testbed
from repro.errors import ScheduleError
from repro.fleet import (
    AdmissionControl,
    Autoscaler,
    FleetPlan,
    LeastLoaded,
    PowerAware,
    RoundRobin,
    SessionAffinity,
    build_fleet,
    build_fleet_cached,
    fleet_sweep,
    fleet_table,
    parse_router,
    simulate_fleet,
)
from repro.perf import CompileCache, fastpath
from repro.serve import (
    FixedBatch,
    ServiceProfile,
    ServingPlan,
    TenantPlan,
    TenantSpec,
    make_trace,
    simulate,
)
from repro.serve.engine import ReplicaCore
from repro.serve.workload import Request

SMALL_TENANTS = [TenantSpec("lenet", "lenet", weight=2.0),
                 TenantSpec("mlp", "mlp", weight=1.0)]


def replica(latency=100.0, interval=10.0, tenants=("a",), mode="spatial",
            deploy_cycles=1_000.0, deploy_energy=500.0, energy=2.0):
    """One synthetic replica plan with round service numbers."""
    plans = tuple(
        TenantPlan(spec=TenantSpec(name, "mlp"),
                   cores=(i,),
                   service=ServiceProfile(latency_cycles=latency,
                                          interval_cycles=interval,
                                          energy_per_inference=energy,
                                          deploy_cycles=deploy_cycles,
                                          deploy_energy=deploy_energy))
        for i, name in enumerate(tenants)
    )
    return ServingPlan(mode=mode, arch_name="synthetic", tenants=plans)


def zero_link():
    """A free front-end hop, so fleet latencies equal replica latencies."""
    return ChipLink(latency_cycles=0.0, energy_per_bit=0.0)


def fleet(n=2, link=None, request_bits=0.0, response_bits=0.0, **kw):
    return FleetPlan(replicas=tuple(replica(**kw) for _ in range(n)),
                     link=link or zero_link(),
                     request_bits=request_bits,
                     response_bits=response_bits)


def requests(tenant, *arrivals, start_index=0):
    return [Request(start_index + i, tenant, t)
            for i, t in enumerate(arrivals)]


def cores_with_backlog(*backlogs):
    """Replica cores whose estimated backlogs are set by hand."""
    cores = []
    for rid, backlog in enumerate(backlogs):
        core = ReplicaCore(replica(), FixedBatch(1), rid=rid)
        core.backlog_cycles = backlog
        cores.append(core)
    return cores


class TestFleetPlan:
    def test_zero_replicas_rejected(self):
        with pytest.raises(ScheduleError):
            FleetPlan(replicas=())

    def test_mismatched_tenant_sets_rejected(self):
        with pytest.raises(ScheduleError):
            FleetPlan(replicas=(replica(tenants=("a",)),
                                replica(tenants=("a", "b"))))

    def test_with_replicas_truncates_and_grows(self):
        plan = fleet(3)
        assert plan.with_replicas(2).size == 2
        grown = plan.with_replicas(5)
        assert grown.size == 5
        assert grown.replicas[4] == plan.replicas[0]
        with pytest.raises(ScheduleError):
            plan.with_replicas(0)

    def test_deploy_cost_spatial_max_temporal_sum(self):
        def two_tenant(mode):
            plans = tuple(
                TenantPlan(spec=TenantSpec(name, "mlp"), cores=(i,),
                           service=ServiceProfile(
                               latency_cycles=100.0, interval_cycles=10.0,
                               deploy_cycles=cyc, deploy_energy=eng))
                for i, (name, cyc, eng) in enumerate(
                    [("a", 100.0, 40.0), ("b", 300.0, 60.0)]))
            return ServingPlan(mode=mode, arch_name="synthetic",
                               tenants=plans)

        spatial = FleetPlan(replicas=(two_tenant("spatial"),))
        temporal = FleetPlan(replicas=(two_tenant("temporal"),))
        # Spatial regions program concurrently; a shared executor can't.
        assert spatial.deploy_cost(0) == (300.0, 100.0)
        assert temporal.deploy_cost(0) == (400.0, 100.0)

    def test_arch_name_mixed_when_heterogeneous(self):
        hom = fleet(2)
        assert hom.arch_name == "synthetic"
        other = replica()
        object.__setattr__(other, "arch_name", "other")
        het = FleetPlan(replicas=(replica(), other), link=zero_link())
        assert het.arch_name == "mixed"


class TestRouters:
    def test_round_robin_rotates(self):
        cores = cores_with_backlog(0.0, 0.0, 0.0)
        rr = RoundRobin()
        req = Request(0, "a", 0.0)
        picks = [rr.route(req, 0.0, cores, [0, 1, 2]) for _ in range(5)]
        assert picks == [0, 1, 2, 0, 1]

    def test_least_loaded_min_backlog_ties_by_id(self):
        cores = cores_with_backlog(50.0, 10.0, 10.0)
        assert LeastLoaded().route(Request(0, "a", 0.0), 0.0,
                                   cores, [0, 1, 2]) == 1

    def test_affinity_home_and_spill(self):
        cores = cores_with_backlog(99.0, 0.0, 0.0)
        router = SessionAffinity(sessions=4)
        # index 4 -> session 0 -> home replica 0, even under load.
        assert router.route(Request(4, "a", 0.0), 0.0, cores,
                            [0, 1, 2]) == 0
        # Home replica 0 unavailable: spill to least-loaded (id tie -> 1).
        assert router.route(Request(4, "a", 0.0), 0.0, cores, [1, 2]) == 1

    def test_power_aware_first_fit_then_overflow(self):
        cores = cores_with_backlog(30.0, 5.0, 0.0)
        router = PowerAware(headroom_cycles=20.0)
        # Replica 0 is over headroom; 1 is the first with room.
        assert router.route(Request(0, "a", 0.0), 0.0, cores,
                            [0, 1, 2]) == 1
        # Everyone full -> least-loaded takes the overflow.
        full = cores_with_backlog(30.0, 25.0, 40.0)
        assert router.route(Request(0, "a", 0.0), 0.0, full,
                            [0, 1, 2]) == 1

    def test_parse_router_round_trips(self):
        for spec in ("rr", "least-loaded", "affinity:64", "power:1234"):
            assert parse_router(spec).describe() == spec
        assert parse_router("affinity").sessions == 1024
        for bad in ("", "rr:1", "affinity:x", "power:a:b", "random"):
            with pytest.raises(ScheduleError):
                parse_router(bad)

    def test_session_count_validated(self):
        with pytest.raises(ScheduleError):
            SessionAffinity(sessions=0)


class TestAdmission:
    def screen(self, ac, capable, cores, tenant_out=0, share=1.0,
               slo=1_000.0, hop=0.0):
        return ac.screen(Request(0, "a", 0.0), capable, cores,
                         {"a": slo}, hop, {"a": tenant_out}, {"a": share})

    def test_no_capacity(self):
        got = self.screen(AdmissionControl(), [], cores_with_backlog())
        assert got == ([], "no_capacity")

    def test_queue_saturation(self):
        cores = cores_with_backlog(0.0, 0.0)
        for core in cores:
            core.outstanding = 2
        ac = AdmissionControl(max_outstanding=2)
        assert self.screen(ac, [0, 1], cores) == ([], "queue")
        cores[1].outstanding = 1
        assert self.screen(ac, [0, 1], cores) == ([1], None)

    def test_slo_budget_filters_on_estimated_completion(self):
        # Isolated latency is 100; backlog 950 + 100 > 1000 but 0 + 100
        # fits.
        cores = cores_with_backlog(950.0, 0.0)
        ac = AdmissionControl(slo_budget=1.0)
        assert self.screen(ac, [0, 1], cores) == ([1], None)
        assert self.screen(ac, [0], cores) == ([], "slo")
        # The link round-trip counts against the deadline too.
        assert self.screen(ac, [1], cores, hop=950.0) == ([], "slo")

    def test_fairness_clips_over_share_tenant(self):
        cores = cores_with_backlog(0.0, 0.0)
        ac = AdmissionControl(max_outstanding=10, fairness=True)
        # Budget = 10 slots x 2 replicas x 0.25 share = 5.
        assert self.screen(ac, [0, 1], cores, tenant_out=5,
                           share=0.25) == ([], "fairness")
        got = self.screen(ac, [0, 1], cores, tenant_out=4, share=0.25)
        assert got == ([0, 1], None)

    def test_validation(self):
        with pytest.raises(ScheduleError):
            AdmissionControl(max_outstanding=0)
        with pytest.raises(ScheduleError):
            AdmissionControl(slo_budget=0.0)
        with pytest.raises(ScheduleError):
            AdmissionControl(fairness=True)

    def test_describe(self):
        assert AdmissionControl().describe() == "open"
        ac = AdmissionControl(max_outstanding=8, slo_budget=2.0,
                              fairness=True)
        assert ac.describe() == "queue<=8+slo<=2x+fair"


class TestAutoscaler:
    def test_scale_up_is_immediate(self):
        a = Autoscaler(up_threshold=10.0)
        assert a.decide(44, 4, 8) == "up"

    def test_no_up_past_cap(self):
        a = Autoscaler(up_threshold=10.0, max_replicas=4)
        assert a.decide(99, 4, 8) is None

    def test_scale_down_needs_consecutive_quiet_ticks(self):
        a = Autoscaler(down_threshold=3.0, hold_ticks=3)
        assert a.decide(0, 4, 8) is None
        assert a.decide(0, 4, 8) is None
        assert a.decide(0, 4, 8) == "down"
        # Counter reset after the event: quiet ticks start over.
        assert a.decide(0, 4, 8) is None

    def test_busy_tick_resets_the_hold(self):
        a = Autoscaler(up_threshold=12.0, down_threshold=3.0, hold_ticks=2)
        assert a.decide(0, 4, 8) is None
        assert a.decide(20, 4, 8) is None    # mid-band: damps the flap
        assert a.decide(0, 4, 8) is None
        assert a.decide(0, 4, 8) == "down"

    def test_never_below_floor(self):
        a = Autoscaler(min_replicas=2, hold_ticks=1)
        assert a.decide(0, 2, 8) is None

    def test_validation(self):
        with pytest.raises(ScheduleError):
            Autoscaler(tick_cycles=0.0)
        with pytest.raises(ScheduleError):
            Autoscaler(min_replicas=0)
        with pytest.raises(ScheduleError):
            Autoscaler(min_replicas=4, max_replicas=2)
        with pytest.raises(ScheduleError):
            Autoscaler(up_threshold=2.0, down_threshold=3.0)
        with pytest.raises(ScheduleError):
            Autoscaler(hold_ticks=0)


class TestFleetEngine:
    def test_single_replica_zero_link_matches_serve(self):
        # Batch size 1 makes the two engines' batching signals
        # equivalent: the serve engine registers the whole (finite)
        # trace as pending upfront, while a fleet front end only
        # announces a request one hop before it lands — so multi-request
        # batch policies legitimately flush partial batches earlier in a
        # fleet.  With singleton batches the queueing, occupancy, and
        # accounting must agree exactly over a free link.
        plan = replica()
        trace = requests("a", *[float(i * 37) for i in range(30)])
        solo = simulate(plan, trace, policy=FixedBatch(1))
        merged = simulate_fleet(fleet(1), trace, policy=FixedBatch(1))
        assert merged.completed == solo.completed == 30
        assert sorted(merged.tenants[0].latencies) == \
            sorted(solo.tenants[0].latencies)
        assert merged.p50 == solo.p50
        assert merged.p99 == solo.p99
        assert merged.replica_energy == solo.total_energy

    def test_deterministic_digest(self):
        trace = requests("a", *[float(i * 7) for i in range(50)])
        kw = dict(policy=FixedBatch(2),
                  admission=AdmissionControl(max_outstanding=4),
                  autoscaler=Autoscaler(tick_cycles=50.0, hold_ticks=2))
        r1 = simulate_fleet(fleet(3), trace, **kw)
        r2 = simulate_fleet(fleet(3), trace, **kw)
        assert r1.digest() == r2.digest()
        assert r1.to_dict() == r2.to_dict()

    def test_all_replicas_saturated_rejects_with_reason(self):
        # 2 replicas x 1 outstanding slot; 10 simultaneous arrivals.
        trace = requests("a", *[0.0] * 10)
        report = simulate_fleet(
            fleet(2), trace, policy=FixedBatch(1),
            admission=AdmissionControl(max_outstanding=1))
        assert report.completed + report.rejected == 10
        assert report.rejections["queue"] == report.rejected > 0
        assert report.slo_attainment < 1.0

    def test_heterogeneous_capacities_bias_least_loaded(self):
        fast = replica(latency=50.0, interval=5.0)
        slow = replica(latency=500.0, interval=200.0)
        plan = FleetPlan(replicas=(fast, slow), link=zero_link(),
                         request_bits=0.0, response_bits=0.0)
        trace = requests("a", *[float(i * 10) for i in range(200)])
        report = simulate_fleet(plan, trace, policy=FixedBatch(1))
        done = {r.rid: r.completed for r in report.replicas}
        assert done[0] > done[1]
        assert report.completed == 200

    def test_autoscaler_tracks_the_peak_with_hysteresis(self):
        # A front-loaded storm then a long quiet tail: the fleet must
        # scale up during the storm and back down after the hold.
        storm = requests("a", *[float(i) for i in range(120)])
        tail = requests("a", *[3_000.0 + i * 2_000.0 for i in range(12)],
                        start_index=120)
        scaler = Autoscaler(tick_cycles=100.0, min_replicas=1,
                            up_threshold=6.0, down_threshold=2.0,
                            hold_ticks=3)
        report = simulate_fleet(fleet(4), storm + tail,
                                policy=FixedBatch(4), autoscaler=scaler)
        actions = [a for _, a, _ in report.scale_events]
        assert "up" in actions and "down" in actions
        # Single peak => single ramp: every up precedes every down (no
        # flapping), and the hold keeps scale-downs >= hold_ticks apart.
        assert actions == (["up"] * actions.count("up") +
                           ["down"] * actions.count("down"))
        downs = [t for t, a, _ in report.scale_events if a == "down"]
        assert all(b - a >= 3 * 100.0 for a, b in zip(downs, downs[1:]))
        assert report.active_peak > 1
        assert report.initial_active == 1

    def test_spin_up_pays_deploy_energy(self):
        storm = requests("a", *[float(i) for i in range(120)])
        scaler = Autoscaler(tick_cycles=100.0, min_replicas=1,
                            up_threshold=4.0, down_threshold=1.0)
        report = simulate_fleet(fleet(3), storm, policy=FixedBatch(4),
                                autoscaler=scaler)
        # One charge per deployment (incl. the initially active replica),
        # at the synthetic per-replica cost of 500.
        assert report.deployments >= 2
        assert report.deploy_energy == 500.0 * report.deployments
        assert report.total_energy == pytest.approx(
            report.replica_energy + report.deploy_energy
            + report.link_energy)

    def test_static_fleet_charges_initial_deployments(self):
        trace = requests("a", 0.0, 10.0)
        report = simulate_fleet(fleet(3), trace)
        assert report.deployments == 3
        assert report.deploy_energy == 1_500.0
        assert report.scale_events == ()
        assert report.active_peak == 3

    def test_link_charges_both_legs_and_delays_requests(self):
        link = ChipLink(bandwidth_bits=100.0, latency_cycles=10.0,
                        energy_per_bit=2.0)
        plan = FleetPlan(replicas=(replica(),), link=link,
                         request_bits=200.0, response_bits=50.0)
        trace = requests("a", 0.0)
        report = simulate_fleet(plan, trace, policy=FixedBatch(1))
        # Request leg 10 + 200/100 = 12, response leg 10 + 50/100 = 10.5,
        # service 100.
        assert report.p50 == pytest.approx(122.5)
        assert report.link_energy == pytest.approx(200.0 * 2 + 50.0 * 2)

    def test_rerun_reuses_engine_safely(self):
        # Stateful collaborators (rr pointer, autoscaler hold counter)
        # must not leak between runs of the same engine object.
        from repro.fleet import FleetEngine
        trace = requests("a", *[float(i * 5) for i in range(40)])
        engine = FleetEngine(fleet(3), policy=FixedBatch(2),
                             router=RoundRobin(),
                             autoscaler=Autoscaler(tick_cycles=50.0))
        assert engine.run(trace).digest() == engine.run(trace).digest()

    def test_autoscaler_floor_must_fit_fleet(self):
        with pytest.raises(ScheduleError):
            simulate_fleet(fleet(2), [],
                           autoscaler=Autoscaler(min_replicas=3))

    def test_report_json_round_trip(self):
        trace = requests("a", 0.0, 50.0, 100.0)
        report = simulate_fleet(fleet(2), trace)
        payload = json.loads(report.to_json())
        assert payload["fleet_size"] == 2
        assert payload["completed"] == 3
        assert "fleet" in report.table()


class TestSharedCompileCache:
    def test_fleet_compiles_each_model_exactly_once(self):
        arch = functional_testbed()
        solo_cache = CompileCache()
        build_fleet(arch, SMALL_TENANTS, replicas=1, cache=solo_cache)
        solo = solo_cache.stats()

        cache = CompileCache()
        plan = build_fleet(arch, SMALL_TENANTS, replicas=4, cache=cache)
        stats = cache.stats()
        # Replicas 2..4 are pure cache hits: not one extra compile.
        for key in ("profile_misses", "dup_misses", "segment_misses"):
            assert stats[key] == solo[key]
        for key in ("profile_hits", "dup_hits", "segment_hits"):
            assert stats[key] > solo[key]
        assert plan.size == 4
        # Deploy costs flow from the compiled power model.
        cycles, energy = plan.deploy_cost(0)
        assert cycles > 0 and energy > 0

    def test_build_fleet_rejects_zero_replicas(self):
        with pytest.raises(ScheduleError):
            build_fleet(functional_testbed(), SMALL_TENANTS, replicas=0)


class TestFleetPipeline:
    """End-to-end on a real compiled testbed plan."""

    def test_serial_and_fastpath_reports_identical(self):
        arch = functional_testbed()
        trace = make_trace("diurnal-bursty", SMALL_TENANTS, rate=1e-4,
                           num_requests=300, seed=1)
        digests = []
        for fast in (False, True):
            with fastpath(fast):
                plan = build_fleet(arch, SMALL_TENANTS, replicas=3)
                report = simulate_fleet(
                    plan, trace,
                    admission=AdmissionControl(max_outstanding=32),
                    autoscaler=Autoscaler(tick_cycles=500_000.0,
                                          min_replicas=1))
            digests.append(report.digest())
        assert digests[0] == digests[1]

    def test_least_loaded_beats_round_robin_p99_under_bursty_load(self):
        # The EXPERIMENTS.md fleet headline's shape claim.  Round-robin
        # is blind to request cost, so a burst of heavy-tenant requests
        # piles onto whichever replica is "next"; least-loaded spreads
        # by estimated backlog.  Heterogeneous per-tenant service costs
        # are what make the difference visible.
        def hetero_replica():
            plans = []
            for i, (name, lat, interval) in enumerate(
                    [("heavy", 1000.0, 500.0), ("light", 50.0, 10.0)]):
                plans.append(TenantPlan(
                    spec=TenantSpec(name, "mlp"), cores=(i,),
                    service=ServiceProfile(latency_cycles=lat,
                                           interval_cycles=interval,
                                           energy_per_inference=2.0,
                                           deploy_cycles=1_000.0,
                                           deploy_energy=500.0)))
            return ServingPlan(mode="spatial", arch_name="synthetic",
                               tenants=tuple(plans))

        specs = [TenantSpec("heavy", "mlp", weight=1.0),
                 TenantSpec("light", "mlp", weight=4.0)]
        plan = FleetPlan(replicas=tuple(hetero_replica() for _ in range(4)),
                        link=zero_link(),
                        request_bits=0.0, response_bits=0.0)
        for seed in (0, 3):
            trace = make_trace("bursty", specs, 4e-3, 4_000, seed=seed)
            p99 = {}
            for spec in ("rr", "least-loaded"):
                report = simulate_fleet(plan, trace,
                                        router=parse_router(spec))
                assert report.completed == 4_000
                p99[spec] = report.p99
            assert p99["least-loaded"] < p99["rr"]

    def test_sweep_grid_and_table(self):
        arch = functional_testbed()
        plan = build_fleet_cached(arch, SMALL_TENANTS, replicas=2)
        trace = make_trace("poisson", SMALL_TENANTS, rate=1e-4,
                           num_requests=120, seed=0)
        points = fleet_sweep(plan, trace, replica_counts=(1, 2),
                             routers=("rr", "least-loaded"))
        assert len(points) == 4
        assert {(p.replicas, p.router) for p in points} == {
            (1, "rr"), (1, "least-loaded"),
            (2, "rr"), (2, "least-loaded")}
        for p in points:
            assert p.report.completed + p.report.rejected == 120
        table = fleet_table(points)
        assert "least-loaded p99" in table and "replicas" in table
