"""Flow validator: mode gating, address ranges, write-before-read."""

import numpy as np
import pytest

from repro.arch import ComputingMode, table2_example
from repro.errors import CodegenError
from repro.mops import (
    FlowValidator,
    MetaOperatorFlow,
    ParallelBlock,
    ReadCore,
    ReadRow,
    ReadXb,
    WriteRow,
    WriteXb,
)


def flow_with(*stmts, constants=None):
    flow = MetaOperatorFlow("t", list(stmts))
    for name, value in (constants or {}).items():
        flow.add_constant(name, value)
    return flow


def cells(rows=4, cols=4):
    return np.zeros((rows, cols))


class TestModeGating:
    def test_readcore_only_in_cm(self):
        arch = table2_example(ComputingMode.XBM)
        flow = flow_with(ReadCore("conv", 0, 0, 0))
        with pytest.raises(CodegenError, match="CM meta-operator"):
            FlowValidator(arch).validate(flow)
        FlowValidator(table2_example(ComputingMode.CM)).validate(flow)

    def test_readxb_not_in_cm(self):
        arch = table2_example(ComputingMode.CM)
        flow = flow_with(WriteXb(0, "A"), ReadXb(0),
                         constants={"A": cells()})
        with pytest.raises(CodegenError, match="requires XBM/WLM"):
            FlowValidator(arch).validate(flow)

    def test_readrow_requires_wlm(self):
        arch = table2_example(ComputingMode.XBM)
        flow = flow_with(WriteRow(0, 0, 4, "A"), ReadRow(0, 0, 4),
                         constants={"A": cells()})
        with pytest.raises(CodegenError, match="requires WLM"):
            FlowValidator(arch).validate(flow)


class TestRanges:
    def test_core_out_of_range(self):
        arch = table2_example(ComputingMode.CM)
        flow = flow_with(ReadCore("conv", 5, 0, 0))
        with pytest.raises(CodegenError, match="coreaddr"):
            FlowValidator(arch).validate(flow)

    def test_crossbar_out_of_range(self):
        arch = table2_example(ComputingMode.XBM)  # 4 crossbars total
        flow = flow_with(WriteXb(3, "A"), ReadXb(3, 2),
                         constants={"A": cells()})
        with pytest.raises(CodegenError, match="exceeds"):
            FlowValidator(arch).validate(flow)

    def test_row_range_exceeds_height(self):
        arch = table2_example(ComputingMode.WLM)  # 32-row crossbars
        flow = flow_with(WriteRow(0, 20, 20, "A"),
                         constants={"A": cells(20)})
        with pytest.raises(CodegenError, match="exceed crossbar height"):
            FlowValidator(arch).validate(flow)

    def test_readrow_exceeds_parallel_row(self):
        arch = table2_example(ComputingMode.WLM)  # parallel_row = 16
        flow = flow_with(WriteRow(0, 0, 32, "A"), ReadRow(0, 0, 32),
                         constants={"A": cells(32)})
        with pytest.raises(CodegenError, match="parallel_row"):
            FlowValidator(arch).validate(flow)


class TestOrderingRules:
    def test_read_before_write_rejected(self):
        arch = table2_example(ComputingMode.XBM)
        flow = flow_with(ReadXb(0))
        with pytest.raises(CodegenError, match="before any"):
            FlowValidator(arch).validate(flow)

    def test_readrow_before_write_rejected(self):
        arch = table2_example(ComputingMode.WLM)
        flow = flow_with(ReadRow(0, 0, 8))
        with pytest.raises(CodegenError, match="before it is written"):
            FlowValidator(arch).validate(flow)

    def test_double_activation_in_parallel_rejected(self):
        arch = table2_example(ComputingMode.XBM)
        flow = flow_with(
            WriteXb(0, "A"),
            ParallelBlock((ReadXb(0), ReadXb(0))),
            constants={"A": cells()})
        with pytest.raises(CodegenError, match="activated twice"):
            FlowValidator(arch).validate(flow)

    def test_undefined_constant_rejected(self):
        arch = table2_example(ComputingMode.XBM)
        flow = flow_with(WriteXb(0, "ghost"))
        with pytest.raises(CodegenError, match="undefined constant"):
            FlowValidator(arch).validate(flow)

    def test_valid_flow_returns_stats(self):
        arch = table2_example(ComputingMode.XBM)
        flow = flow_with(
            WriteXb(0, "A"), WriteXb(1, "A"),
            ParallelBlock((ReadXb(0), ReadXb(1))),
            constants={"A": cells()})
        stats = FlowValidator(arch).validate(flow)
        assert stats == {"steps": 3, "cim_reads": 2, "cim_writes": 2}
