"""GraphBuilder, JSON serialization round-trip, and graph transforms."""

import pytest

from repro.errors import GraphError
from repro.graph import (
    GraphBuilder,
    annotate_depth,
    critical_path,
    eliminate_dead_nodes,
    fold_identities,
    graph_from_dict,
    graph_to_dict,
    load_graph,
    save_graph,
)
from repro.models import residual_toy, tiny_conv, vit_tiny


class TestBuilder:
    def test_sequential_net_shapes(self):
        b = GraphBuilder("net")
        x = b.input("x", (1, 3, 8, 8))
        x = b.conv(x, 8, kernel=3, padding=1)
        x = b.relu(x)
        x = b.maxpool(x, kernel=2)
        x = b.flatten(x)
        x = b.gemm(x, 10)
        g = b.build([x])
        assert g.tensors[g.outputs[0]].shape == (1, 10)

    def test_conv_requires_known_input_shape(self):
        b = GraphBuilder("net")
        with pytest.raises(GraphError, match="unknown shape"):
            b.conv("mystery", 8, kernel=3)

    def test_residual_wiring(self):
        g = residual_toy()
        add = g.node("residual_add")
        assert len(add.inputs) == 2
        # One operand comes from conv2, the other is the graph input.
        assert [p.name for p in g.predecessors(add)] == ["conv2"]

    def test_weight_bits_follow_builder_default(self):
        b = GraphBuilder("net", bits=4)
        x = b.input("x", (1, 4))
        b.gemm(x, 2, name="fc")
        assert b._tensors["fc_w"].bits == 4

    def test_bias_tensors_created(self):
        b = GraphBuilder("net")
        x = b.input("x", (1, 4))
        b.gemm(x, 2, bias=True, name="fc")
        assert "fc_b" in b._tensors
        assert b._tensors["fc_b"].is_weight


class TestSerialization:
    @pytest.mark.parametrize("factory", [tiny_conv, residual_toy, vit_tiny])
    def test_roundtrip_preserves_structure(self, factory):
        g = factory()
        g2 = graph_from_dict(graph_to_dict(g))
        assert g2.name == g.name
        assert [n.name for n in g2.topological()] == \
            [n.name for n in g.topological()]
        for name, spec in g.tensors.items():
            assert g2.tensors[name].shape == spec.shape
            assert g2.tensors[name].is_weight == spec.is_weight

    def test_roundtrip_preserves_tuple_attrs(self):
        g = tiny_conv()
        g2 = graph_from_dict(graph_to_dict(g))
        for n1, n2 in zip(g.topological(), g2.topological()):
            assert n1.attrs == n2.attrs

    def test_file_roundtrip(self, tmp_path):
        g = tiny_conv()
        path = tmp_path / "model.json"
        save_graph(g, path)
        g2 = load_graph(path)
        assert len(g2.nodes) == len(g.nodes)

    def test_bad_schema_rejected(self):
        with pytest.raises(GraphError, match="schema"):
            graph_from_dict({"schema": 99})


class TestTransforms:
    def test_dead_node_elimination(self):
        b = GraphBuilder("net")
        x = b.input("x", (1, 4))
        live = b.gemm(x, 4, name="live")
        b.gemm(x, 4, name="dead")  # output unused
        g = b.build([live])
        pruned = eliminate_dead_nodes(g)
        names = {n.name for n in pruned.nodes}
        assert "live" in names and "dead" not in names

    def test_identity_folding(self):
        b = GraphBuilder("net")
        x = b.input("x", (1, 4))
        y = b.node("Identity", [x], name="id")
        z = b.relu(y, name="r")
        g = b.build([z])
        folded = fold_identities(g)
        assert all(n.op_type != "Identity" for n in folded.nodes)
        r = folded.node("r")
        assert r.inputs == ["x"]

    def test_identity_as_output_rewired(self):
        b = GraphBuilder("net")
        x = b.input("x", (1, 4))
        y = b.relu(x, name="r")
        z = b.node("Identity", [y], name="id")
        g = b.build([z])
        folded = fold_identities(g)
        assert folded.outputs == ["r_out"]

    def test_depth_annotation(self):
        g = tiny_conv()
        depth = annotate_depth(g)
        for node in g.topological():
            for pred in g.predecessors(node):
                assert depth[node.name] > depth[pred.name]
            assert node.annotations["depth"] == depth[node.name]

    def test_critical_path_is_a_chain(self):
        g = residual_toy()
        path = critical_path(g)
        assert len(path) >= 4  # conv1, relu1, conv2, add, relu2
        for a, b in zip(path, path[1:]):
            assert b in g.successors(a)
