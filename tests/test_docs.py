"""Documentation guards: links resolve, public API documented, no drift.

CI runs the same checks as standalone jobs; running them here too makes
``pytest`` the single local gate.
"""

import os
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "scripts"))

import check_docstrings  # noqa: E402
import check_links  # noqa: E402


def test_no_broken_markdown_links():
    broken = check_links.broken_links(REPO)
    assert broken == [], f"broken intra-repo links: {broken}"


def test_public_api_docstrings():
    problems = []
    src = os.path.join(REPO, "src")
    for path in check_docstrings.scoped_files(src):
        for lineno, kind, name in check_docstrings.missing_docstrings(path):
            problems.append(f"{os.path.relpath(path, src)}:{lineno} "
                            f"{kind} {name}")
    assert problems == [], f"undocumented public API: {problems}"


def test_architecture_md_names_every_package():
    """The module table in ARCHITECTURE.md must cover the real packages."""
    with open(os.path.join(REPO, "docs", "ARCHITECTURE.md")) as fh:
        text = fh.read()
    pkg_root = os.path.join(REPO, "src", "repro")
    packages = sorted(
        name for name in os.listdir(pkg_root)
        if os.path.isdir(os.path.join(pkg_root, name))
        and not name.startswith("__"))
    for name in packages:
        assert f"repro.{name}" in text, \
            f"docs/ARCHITECTURE.md does not mention repro.{name}"


def test_readme_links_docs():
    with open(os.path.join(REPO, "README.md")) as fh:
        text = fh.read()
    assert "docs/ARCHITECTURE.md" in text
    assert "docs/CLI.md" in text


# The CLI docs-drift guard (docs/CLI.md sections == `repro --help`
# subcommands, both directions) lives in
# tests/test_cli.py::TestParser::test_help_names_every_documented_subcommand
# next to the other CLI contract tests.
