"""Documentation guards: links resolve, public API documented, no drift.

CI runs the same checks as standalone jobs; running them here too makes
``pytest`` the single local gate.
"""

import os
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "scripts"))

import check_docstrings  # noqa: E402
import check_links  # noqa: E402


def test_no_broken_markdown_links():
    broken = check_links.broken_links(REPO)
    assert broken == [], f"broken intra-repo links: {broken}"


def test_public_api_docstrings():
    problems = []
    src = os.path.join(REPO, "src")
    for path in check_docstrings.scoped_files(src):
        for lineno, kind, name in check_docstrings.missing_docstrings(path):
            problems.append(f"{os.path.relpath(path, src)}:{lineno} "
                            f"{kind} {name}")
    assert problems == [], f"undocumented public API: {problems}"


def test_architecture_md_names_every_package():
    """The module table in ARCHITECTURE.md must cover the real packages."""
    with open(os.path.join(REPO, "docs", "ARCHITECTURE.md")) as fh:
        text = fh.read()
    pkg_root = os.path.join(REPO, "src", "repro")
    packages = sorted(
        name for name in os.listdir(pkg_root)
        if os.path.isdir(os.path.join(pkg_root, name))
        and not name.startswith("__"))
    for name in packages:
        assert f"repro.{name}" in text, \
            f"docs/ARCHITECTURE.md does not mention repro.{name}"


def test_readme_links_docs():
    with open(os.path.join(REPO, "README.md")) as fh:
        text = fh.read()
    assert "docs/ARCHITECTURE.md" in text
    assert "docs/CLI.md" in text
    assert "docs/ENERGY.md" in text


def test_docs_index_links_every_page():
    """docs/README.md must link every sibling page (and vice versa: a
    page that exists but is unreachable from the index is doc rot)."""
    docs = os.path.join(REPO, "docs")
    with open(os.path.join(docs, "README.md")) as fh:
        index = fh.read()
    for name in sorted(os.listdir(docs)):
        if name.endswith(".md") and name != "README.md":
            assert f"({name})" in index, \
                f"docs/README.md does not link {name}"


def test_energy_md_constants_exist():
    """Every constant ENERGY.md's table names must exist in
    repro.sim.power with the documented default."""
    import re

    from repro.sim import power

    with open(os.path.join(REPO, "docs", "ENERGY.md")) as fh:
        text = fh.read()
    rows = re.findall(r"^\| `(E_\w+)` \| ([\d.]+) \|", text, re.MULTILINE)
    assert len(rows) >= 4, "ENERGY.md constants table went missing"
    for name, value in rows:
        assert hasattr(power, name), f"ENERGY.md names unknown {name}"
        assert getattr(power, name) == float(value), \
            f"ENERGY.md documents {name}={value}, code has " \
            f"{getattr(power, name)}"


def test_energy_md_mentions_link_energy_default():
    """ENERGY.md documents ChipLink.energy_per_bit's default."""
    from repro.arch import ChipLink

    with open(os.path.join(REPO, "docs", "ENERGY.md")) as fh:
        text = fh.read()
    assert "energy_per_bit" in text
    assert f"default {ChipLink().energy_per_bit:g}" in text


# The CLI docs-drift guard (docs/CLI.md sections == `repro --help`
# subcommands, both directions) lives in
# tests/test_cli.py::TestParser::test_help_names_every_documented_subcommand
# next to the other CLI contract tests.
