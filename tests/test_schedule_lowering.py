"""Schedule container invariants and lowering structure."""

import numpy as np
import pytest

from repro.arch import ComputingMode, functional_testbed, isaac_baseline
from repro.errors import CodegenError, ScheduleError
from repro.models import mlp, tiny_conv
from repro.mops import Mov, ParallelBlock, ReadCore, WriteXb
from repro.quant import random_weights
from repro.sched import CIMMLC, CostModel, OpDecision, Schedule, schedule_cg
from repro.sched.lowering import (
    Lowering,
    _split_range,
    _stagger,
    _tile_bounds,
    lower_to_flow,
)


class TestScheduleContainer:
    def make(self):
        graph = tiny_conv()
        return schedule_cg(graph, isaac_baseline()), graph

    def test_missing_node_in_segments_rejected(self):
        sched, graph = self.make()
        with pytest.raises(ScheduleError, match="missing"):
            Schedule(graph, sched.arch, sched.decisions, [[]])

    def test_missing_decision_rejected(self):
        sched, graph = self.make()
        decisions = dict(sched.decisions)
        decisions.pop("conv1")
        with pytest.raises(ScheduleError, match="no decision"):
            Schedule(graph, sched.arch, decisions, sched.segments)

    def test_resource_validation(self):
        sched, graph = self.make()
        conv = sched.decision("conv1")
        conv.dup_cg = 10 ** 6
        with pytest.raises(ScheduleError, match="cores"):
            sched.validate_resources()

    def test_summary_renders(self):
        sched, _ = self.make()
        assert "segment 0" in sched.summary()

    def test_effective_dup_prefers_mvm(self):
        sched, _ = self.make()
        d = sched.decision("conv1")
        d.dup_mvm = d.dup_cg + 5
        assert d.dup == d.dup_cg + 5
        d.dup_mvm = None
        assert d.dup == d.dup_cg


class TestLoweringHelpers:
    def test_split_range_covers_exactly(self):
        bounds = _split_range(10, 3)
        assert bounds == [(0, 4), (4, 7), (7, 10)]

    def test_tile_bounds(self):
        assert _tile_bounds(10, 4) == [(0, 4), (4, 8), (8, 10)]

    def test_stagger_separates_same_crossbar(self):
        from repro.mops import ReadRow

        reads = [ReadRow(0, 0, 4), ReadRow(0, 4, 4), ReadRow(1, 0, 4)]
        blocks = _stagger(reads)
        assert len(blocks) == 2
        for block in blocks:
            addrs = [op.xbaddr for op in block]
            assert len(addrs) == len(set(addrs))


class TestLoweringStructure:
    def test_cm_flow_uses_readcore_per_replica(self):
        arch = functional_testbed(ComputingMode.CM)
        graph = tiny_conv()
        schedule = CIMMLC(arch).schedule(graph)
        program = lower_to_flow(schedule, random_weights(graph, seed=0,
                                                         low=-2, high=2))
        readcores = program.flow.count(ReadCore)
        expected = sum(
            min(schedule.decision(n.name).dup_cg,
                graph.output_spec(n).shape[2]
                if n.op_type == "Conv" else 1)
            for n in graph.cim_nodes())
        assert readcores == expected
        assert len(program.core_images) == readcores

    def test_xbm_writes_before_reads(self):
        arch = functional_testbed(ComputingMode.XBM)
        graph = mlp()
        program = lower_to_flow(
            CIMMLC(arch).schedule(graph),
            random_weights(graph, seed=0, low=-2, high=2))
        seen_read = False
        for op in program.flow.leaves():
            if isinstance(op, WriteXb):
                assert True
            from repro.mops import ReadXb

            if isinstance(op, ReadXb):
                seen_read = True
        assert seen_read

    def test_multi_segment_rejected(self):
        arch = functional_testbed(ComputingMode.XBM).with_cores(1)
        graph = mlp(hidden=(64, 64, 64, 64))
        schedule = CIMMLC(arch).schedule(graph)
        if len(schedule.segments) > 1:
            with pytest.raises(CodegenError, match="single-segment"):
                lower_to_flow(schedule,
                              random_weights(graph, seed=0, low=-2, high=2))

    def test_tensor_offsets_disjoint(self):
        arch = functional_testbed(ComputingMode.XBM)
        graph = tiny_conv()
        program = lower_to_flow(
            CIMMLC(arch).schedule(graph),
            random_weights(graph, seed=0, low=-2, high=2))
        placed = sorted(
            (off, graph.tensors[name].numel)
            for name, off in program.tensor_offsets.items())
        for (a0, alen), (b0, _) in zip(placed, placed[1:]):
            assert a0 + alen <= b0

    def test_constants_referenced_by_writes(self):
        arch = functional_testbed(ComputingMode.XBM)
        graph = mlp()
        program = lower_to_flow(
            CIMMLC(arch).schedule(graph),
            random_weights(graph, seed=0, low=-2, high=2))
        referenced = {op.mat for op in program.flow.leaves()
                      if isinstance(op, WriteXb)}
        assert referenced == set(program.flow.constants)
