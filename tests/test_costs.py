"""Cost model: operator profiles and the latency function."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.arch import ComputingMode, isaac_baseline, jia2021
from repro.errors import ScheduleError
from repro.graph import GraphBuilder
from repro.models import conv_relu_example, resnet18, vit_tiny
from repro.sched import CostModel, chip_fits, reconfiguration_cycles


@pytest.fixture(scope="module")
def baseline_profiles():
    arch = isaac_baseline()
    graph = resnet18()
    return CostModel(arch).profiles(graph), graph


class TestProfileQuantities:
    def test_conv1_mvm_decomposition(self, baseline_profiles):
        profiles, _ = baseline_profiles
        p = profiles["conv1"]
        assert p.is_cim
        assert p.num_mvms == 112 * 112          # output positions
        # 8-bit activations through a 1-bit DAC: 8 passes.
        assert p.input_passes == 8
        # conv1 weight rows = 3*7*7 = 147 -> 2 vertical tiles, full tile
        # of 128 rows at 8 parallel rows -> 16 waves.
        assert p.row_waves == 16
        assert p.mvm_cycles_base == 128

    def test_digital_op_profile(self, baseline_profiles):
        profiles, _ = baseline_profiles
        p = profiles["relu1"]
        assert not p.is_cim
        assert p.cores_per_replica == 0
        # Per-core ALUs (1024 ops/cycle each) work data-parallel in WLM.
        assert p.alu_cycles == 64 * 112 * 112 / (1024 * 768)

    def test_elementwise_has_no_movement(self, baseline_profiles):
        profiles, _ = baseline_profiles
        assert profiles["relu1"].mov_cycles == 0.0
        assert profiles["bn1"].mov_cycles == 0.0
        assert profiles["conv1"].mov_cycles > 0.0

    def test_weight_bits(self, baseline_profiles):
        profiles, _ = baseline_profiles
        assert profiles["conv1"].weight_bits == 147 * 64 * 8

    def test_latency_validation(self, baseline_profiles):
        profiles, _ = baseline_profiles
        with pytest.raises(ScheduleError):
            profiles["conv1"].latency(dup=0)
        with pytest.raises(ScheduleError):
            profiles["conv1"].latency(wave_reduction=0)


class TestLatencyFunction:
    @given(dup=st.integers(1, 64), wave=st.integers(1, 16))
    def test_latency_positive(self, dup, wave):
        profiles = CostModel(isaac_baseline()).profiles(conv_relu_example())
        p = profiles["conv"]
        assert p.latency(dup, wave) > 0

    def test_latency_monotone_in_duplication(self):
        p = CostModel(isaac_baseline()).profiles(
            conv_relu_example())["conv"]
        lats = [p.latency(d) for d in range(1, 40)]
        assert all(a >= b for a, b in zip(lats, lats[1:]))

    def test_latency_monotone_in_wave_reduction(self):
        p = CostModel(isaac_baseline()).profiles(
            conv_relu_example())["conv"]
        lats = [p.latency(1, w) for w in range(1, 17)]
        assert all(a >= b for a, b in zip(lats, lats[1:]))

    def test_duplication_saturates_at_windows(self):
        p = CostModel(isaac_baseline()).profiles(
            conv_relu_example())["conv"]
        assert p.latency(p.num_mvms) == p.latency(p.num_mvms * 10)

    def test_movement_floor(self):
        """At extreme duplication, movement bounds the operator."""
        p = CostModel(isaac_baseline()).profiles(resnet18())["conv1"]
        assert p.latency(p.max_useful_dup) >= p.mov_cycles


class TestSeqPasses:
    def test_oversized_op_time_multiplexes(self):
        # A VGG16 conv on Jia's 16-core chip cannot be resident at once.
        from repro.models import vgg16

        profiles = CostModel(jia2021()).profiles(vgg16())
        big = profiles["conv8"]
        assert big.seq_passes > 1
        assert big.cores_per_replica == 16
        assert big.max_useful_dup == 1
        assert big.reload_cycles > 0
        # Resident crossbars never exceed the chip.
        assert big.n_xb <= 16 * 1

    def test_small_op_single_pass(self, baseline_profiles):
        profiles, _ = baseline_profiles
        assert profiles["conv1"].seq_passes == 1
        assert profiles["conv1"].reload_cycles == 0.0


class TestHelpers:
    def test_chip_fits(self, baseline_profiles):
        profiles, _ = baseline_profiles
        assert chip_fits(profiles, isaac_baseline())
        assert not chip_fits(profiles, isaac_baseline().with_cores(4))

    def test_reconfiguration_scales_with_write_ratio(self):
        arch_reram = isaac_baseline()
        profiles = CostModel(arch_reram).profiles(conv_relu_example())
        reram = reconfiguration_cycles(profiles, arch_reram)
        assert reram > 0
        # SRAM rewrites 20x cheaper than ReRAM in the model.
        from dataclasses import replace

        from repro.arch import CellType

        arch_sram = replace(arch_reram,
                            xb=replace(arch_reram.xb,
                                       cell_type=CellType.SRAM))
        sram = reconfiguration_cycles(
            CostModel(arch_sram).profiles(conv_relu_example()), arch_sram)
        assert reram == pytest.approx(20 * sram)

    def test_vit_matmuls_cost_alu(self):
        profiles = CostModel(isaac_baseline()).profiles(vit_tiny())
        scores = profiles["block0_attn_scores"]
        assert not scores.is_cim
        assert scores.alu_cycles > 0
