"""Graph structure: edges, topological order, validation, CIM statistics."""

import pytest

from repro.errors import GraphError, ShapeError
from repro.graph import Graph, GraphBuilder, Node, TensorSpec


def chain_graph():
    """input -> Relu(a) -> Relu(b) -> output."""
    tensors = {"x": TensorSpec("x", (1, 4))}
    nodes = [
        Node("a", "Relu", ["x"], ["t1"]),
        Node("b", "Relu", ["t1"], ["y"]),
    ]
    return Graph("chain", ["x"], ["y"], tensors, nodes)


class TestStructure:
    def test_topological_order_respects_dependencies(self):
        g = chain_graph()
        order = [n.name for n in g.topological()]
        assert order.index("a") < order.index("b")

    def test_nodes_out_of_order_are_sorted(self):
        tensors = {"x": TensorSpec("x", (1, 4))}
        nodes = [
            Node("b", "Relu", ["t1"], ["y"]),
            Node("a", "Relu", ["x"], ["t1"]),
        ]
        g = Graph("g", ["x"], ["y"], tensors, nodes)
        order = [n.name for n in g.topological()]
        assert order == ["a", "b"]

    def test_cycle_detected(self):
        tensors = {"x": TensorSpec("x", (1, 4))}
        nodes = [
            Node("a", "Relu", ["x", "t2"], ["t1"]),
            Node("b", "Relu", ["t1"], ["t2"]),
        ]
        g = Graph("g", ["x"], ["t2"], tensors, nodes)
        with pytest.raises(GraphError, match="cycle"):
            g.topological()

    def test_duplicate_node_name_rejected(self):
        with pytest.raises(GraphError, match="duplicate"):
            Graph("g", [], [], {}, [
                Node("a", "Relu", ["x"], ["y"]),
                Node("a", "Relu", ["y"], ["z"]),
            ])

    def test_double_producer_rejected(self):
        with pytest.raises(GraphError, match="produced by two"):
            Graph("g", [], [], {}, [
                Node("a", "Relu", ["x"], ["y"]),
                Node("b", "Relu", ["x"], ["y"]),
            ])

    def test_undefined_input_rejected(self):
        g = Graph("g", ["x"], ["y"],
                  {"x": TensorSpec("x", (4,))},
                  [Node("a", "Relu", ["ghost"], ["y"])])
        with pytest.raises(GraphError, match="undefined tensor"):
            g.validate()

    def test_missing_output_rejected(self):
        g = Graph("g", ["x"], ["never"],
                  {"x": TensorSpec("x", (4,))},
                  [Node("a", "Relu", ["x"], ["y"])])
        with pytest.raises(GraphError, match="never produced"):
            g.validate()

    def test_producer_and_consumers(self):
        g = chain_graph()
        assert g.producer("t1").name == "a"
        assert g.producer("x") is None
        assert [n.name for n in g.consumers("t1")] == ["b"]

    def test_predecessors_successors(self):
        g = chain_graph()
        b = g.node("b")
        assert [n.name for n in g.predecessors(b)] == ["a"]
        a = g.node("a")
        assert [n.name for n in g.successors(a)] == ["b"]

    def test_unknown_node_lookup(self):
        with pytest.raises(GraphError):
            chain_graph().node("zzz")


class TestShapeInference:
    def test_infers_intermediate_shapes(self):
        g = chain_graph().infer_shapes()
        assert g.tensors["t1"].shape == (1, 4)
        assert g.tensors["y"].shape == (1, 4)

    def test_conflicting_annotation_rejected(self):
        tensors = {
            "x": TensorSpec("x", (1, 4)),
            "y": TensorSpec("y", (1, 5)),  # wrong: Relu preserves shape
        }
        g = Graph("g", ["x"], ["y"], tensors,
                  [Node("a", "Relu", ["x"], ["y"])])
        with pytest.raises(ShapeError, match="annotated"):
            g.infer_shapes()

    def test_missing_spec_reported(self):
        g = chain_graph()
        with pytest.raises(ShapeError, match="run infer_shapes"):
            g.input_specs(g.node("b"))


class TestCIMStats:
    def test_conv_weight_matrix_and_mvms(self):
        b = GraphBuilder("g")
        x = b.input("x", (1, 3, 8, 8))
        y = b.conv(x, out_channels=16, kernel=3, padding=1, name="c")
        g = b.build([y])
        node = g.node("c")
        assert g.weight_matrix(node) == (27, 16, 8)
        assert g.num_mvms(node) == 64          # 8x8 output positions
        assert g.macs(node) == 64 * 27 * 16

    def test_gemm_stats(self):
        b = GraphBuilder("g")
        x = b.input("x", (2, 10))
        y = b.gemm(x, 5, name="fc")
        g = b.build([y])
        node = g.node("fc")
        assert g.weight_matrix(node) == (10, 5, 8)
        assert g.num_mvms(node) == 2           # one MVM per batch row

    def test_digital_op_has_no_matrix(self):
        g = chain_graph().infer_shapes()
        assert g.weight_matrix(g.node("a")) is None
        assert not g.is_cim_supported(g.node("a"))

    def test_total_weight_bits(self):
        b = GraphBuilder("g")
        x = b.input("x", (1, 10))
        y = b.gemm(x, 4, name="fc")
        g = b.build([y])
        assert g.total_weight_bits() == 10 * 4 * 8

    def test_cim_nodes_in_topo_order(self):
        b = GraphBuilder("g")
        x = b.input("x", (1, 8))
        x = b.gemm(x, 8, name="fc1")
        x = b.relu(x)
        x = b.gemm(x, 4, name="fc2")
        g = b.build([x])
        assert [n.name for n in g.cim_nodes()] == ["fc1", "fc2"]
