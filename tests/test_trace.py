"""repro.trace: capture fidelity, critical paths, what-if replay.

The contract under test (docs/TRACE.md):

* recording off changes nothing — engine reports are bit-identical
  with and without the capture code paths compiled in;
* identity replay reproduces a recording bit-for-bit (same digest) for
  every trace kind;
* critical-path spans sum to the end-to-end metric exactly for
  sim/shard pipelines and to the request latency for serving traces;
* link-bandwidth/latency replay of shard traces is *exact* versus
  ground-truth re-simulation (which is what the sweep prefilter rides);
* batching-timeout replay is <5% on the pinned scenario; ±chips replay
  is a monotone screening signal;
* ``repro sweep --prefilter replay`` returns the full sweep's Pareto
  frontier with >= 10x fewer full simulations.
"""

import json
import math

import pytest

from repro.arch import ChipLink, MultiChipSystem, isaac_baseline
from repro.models import lenet, vgg7
from repro.scale import shard
from repro.sched import CIMMLC
from repro.serve import TenantSpec, make_plan, make_trace
from repro.serve.engine import FixedBatch, TimeoutBatch, simulate
from repro.trace import (
    Mutation,
    Trace,
    attribute,
    critical_path,
    parse_mutation,
    record_fleet,
    record_performance,
    record_serve,
    record_shard,
    replay,
    replica_rollup,
    request_latencies,
    request_path,
    tenant_rollup,
    trace_from_summary,
)

ARCH = isaac_baseline()


# ---------------------------------------------------------------------------
# Pinned scenarios (module-scoped: each simulates once)
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def sim_recording():
    schedule = CIMMLC(ARCH).compile(lenet()).schedule
    return record_performance(ARCH, schedule)


@pytest.fixture(scope="module")
def shard_plan():
    return shard(vgg7(), MultiChipSystem(ARCH, 3))


@pytest.fixture(scope="module")
def shard_trace(shard_plan):
    return record_shard(shard_plan)


@pytest.fixture(scope="module")
def serve_scenario():
    specs = [TenantSpec("lenet", "lenet", 1.0),
             TenantSpec("vgg7", "vgg7", 1.0)]
    plan = make_plan("temporal", ARCH, specs)
    requests = make_trace("poisson", specs, 1 / 150_000.0, 40, seed=2)
    policy = TimeoutBatch(4, 25_000.0)
    report, trace = record_serve(plan, requests, policy=policy)
    return plan, requests, policy, report, trace


@pytest.fixture(scope="module")
def fleet_scenario():
    from repro.fleet import Autoscaler, build_fleet, simulate_fleet

    specs = [TenantSpec("lenet", "lenet", 2.0),
             TenantSpec("vgg7", "vgg7", 1.0)]
    plan = build_fleet(ARCH, specs, replicas=3)
    requests = make_trace("bursty", specs, 1 / 500.0, 400, seed=11)
    autoscaler = Autoscaler(tick_cycles=200_000.0, min_replicas=1,
                            max_replicas=3, up_threshold=2.0,
                            down_threshold=0.5, hold_ticks=1)
    report, trace = record_fleet(plan, requests, autoscaler=autoscaler)
    baseline = simulate_fleet(plan, requests, autoscaler=autoscaler)
    return plan, requests, autoscaler, report, trace, baseline


# ---------------------------------------------------------------------------
# Recording off: bit-identical goldens
# ---------------------------------------------------------------------------


def test_serve_recording_off_report_unchanged(serve_scenario):
    plan, requests, policy, recorded_report, trace = serve_scenario
    plain = simulate(plan, requests, policy=policy)
    assert plain.trace_digest is None
    assert "trace_digest" not in plain.to_dict()
    recorded = dict(recorded_report.to_dict())
    assert recorded.pop("trace_digest") == trace.digest()
    assert recorded == plain.to_dict()


def test_fleet_recording_off_report_unchanged(fleet_scenario):
    _, _, _, recorded_report, trace, baseline = fleet_scenario
    assert baseline.trace_digest is None
    assert "trace_digest" not in baseline.to_dict()
    recorded = dict(recorded_report.to_dict())
    assert recorded.pop("trace_digest") == trace.digest()
    assert recorded == baseline.to_dict()


def test_report_digest_incorporates_trace_digest(serve_scenario):
    plan, requests, policy, recorded_report, _ = serve_scenario
    plain = simulate(plan, requests, policy=policy)
    assert recorded_report.digest() != plain.digest()


# ---------------------------------------------------------------------------
# Identity replay is bit-identical, per kind
# ---------------------------------------------------------------------------


def test_sim_identity_replay_bit_identical(sim_recording):
    _, trace = sim_recording
    assert replay(trace).trace.digest() == trace.digest()


def test_shard_identity_replay_bit_identical(shard_trace):
    assert replay(shard_trace).trace.digest() == shard_trace.digest()


def test_serve_identity_replay_bit_identical(serve_scenario):
    *_, trace = serve_scenario
    result = replay(trace)
    assert result.trace.digest() == trace.digest()
    assert result.mutation.is_identity()


def test_fleet_identity_replay_bit_identical(fleet_scenario):
    _, _, _, report, trace, _ = fleet_scenario
    assert any(s.track.endswith("/deploy") for s in trace.spans), \
        "pinned scenario must exercise autoscaler deployments"
    assert replay(trace).trace.digest() == trace.digest()


def test_fixed_batch_identity_replay(serve_scenario):
    plan, requests, _, _, _ = serve_scenario
    _, trace = record_serve(plan, requests, policy=FixedBatch(4))
    assert replay(trace).trace.digest() == trace.digest()


# ---------------------------------------------------------------------------
# Critical paths sum to the end-to-end metric
# ---------------------------------------------------------------------------


def test_sim_critical_path_sums_exactly(sim_recording):
    report, trace = sim_recording
    cp = critical_path(trace)
    assert cp.total == report.total_cycles
    assert sum(cp.by_category.values()) == cp.total


def test_shard_critical_path_sums_exactly(shard_plan, shard_trace):
    cp = critical_path(shard_trace)
    assert cp.total == shard_plan.report.total_cycles
    assert set(cp.by_category) <= {"compute", "link"}


def test_serve_request_path_sums_to_latency(serve_scenario):
    *_, report, trace = serve_scenario
    lats = request_latencies(trace)
    assert len(lats) == trace.meta["completed"]
    slowest = max(lats, key=lats.get)
    cp = request_path(trace, slowest)
    assert math.isclose(cp.total, lats[slowest], rel_tol=1e-9)
    assert replay(trace).metrics["p99"] == report.p99


def test_fleet_request_path_sums_to_latency(fleet_scenario):
    _, _, _, report, trace, _ = fleet_scenario
    lats = request_latencies(trace)
    slowest = max(lats, key=lats.get)
    cp = critical_path(trace)   # default: the slowest request
    assert math.isclose(cp.total, lats[slowest], rel_tol=1e-9)
    assert "link" in cp.by_category   # fleet paths include the hops
    assert replay(trace).metrics["p99"] == report.p99


# ---------------------------------------------------------------------------
# What-if replay fidelity
# ---------------------------------------------------------------------------


def test_shard_link_mutation_exact_vs_resim(shard_trace):
    mutated = ChipLink(bandwidth_bits=32.0, latency_cycles=40.0)
    result = replay(shard_trace,
                    Mutation(link_bandwidth=mutated.bandwidth_bits,
                             link_latency=mutated.latency_cycles))
    truth_plan = shard(vgg7(), MultiChipSystem(ARCH, 3, link=mutated))
    truth = truth_plan.report
    assert result.metrics["total_cycles"] == truth.total_cycles
    assert result.metrics["steady_state_interval"] == \
        truth.steady_state_interval
    assert result.trace.digest() == record_shard(truth_plan).digest()


def test_serving_timeout_mutation_within_5pct(serve_scenario):
    plan, requests, _, _, trace = serve_scenario
    result = replay(trace, Mutation(batch_timeout=40_000.0))
    truth = simulate(plan, requests, policy=TimeoutBatch(4, 40_000.0))
    for key, want in (("p50", truth.p50), ("p99", truth.p99)):
        assert result.metrics[key] == pytest.approx(want, rel=5e-2)
    assert result.trace.meta["batch_timeout"] == 40_000.0


def test_compute_scale_halves_sim_total(sim_recording):
    report, trace = sim_recording
    result = replay(trace, Mutation(compute_scale=2.0,
                                    reconfiguration_scale=2.0))
    assert result.metrics["total_cycles"] == \
        pytest.approx(report.total_cycles / 2.0, rel=1e-12)


def test_chips_mutation_is_screening_signal(shard_trace):
    est = replay(shard_trace, Mutation(chips_delta=1))
    truth = shard(vgg7(), MultiChipSystem(ARCH, 4)).report
    assert est.metrics["total_cycles"] == \
        pytest.approx(truth.total_cycles, rel=5e-2)
    # Scale-out must estimate a better (or equal) steady-state pace.
    assert est.metrics["steady_state_interval"] <= \
        shard_trace.meta["steady_state_interval"]


def test_chips_mutation_rejected_for_serving(serve_scenario):
    from repro.errors import ScheduleError

    *_, trace = serve_scenario
    with pytest.raises(ScheduleError):
        replay(trace, Mutation(chips_delta=1))


# ---------------------------------------------------------------------------
# Sweep prefilter: same frontier, >= 10x fewer simulations
# ---------------------------------------------------------------------------


def test_prefilter_frontier_matches_full_sweep():
    from repro.explore import (
        SweepRunner,
        SweepSpace,
        level_series,
        pareto_frontier,
        replay_prefilter,
    )

    space = SweepSpace.grid(
        ARCH, lenet(),
        {"chips": ["2", "3"],
         "link_bw": ["4", "16", "64", "128", "256", "512"],
         "link_latency": ["5", "20", "80"]},
        series=level_series(["CG"]))
    pre = replay_prefilter(space, SweepRunner())
    full = SweepRunner().run(space)

    want = [(r.label, r.series) for r in pareto_frontier(list(full))]
    got = [(r.label, r.series) for r in pre.frontier]
    assert got == want
    assert pre.stats.total_points == len(space) == 36
    assert pre.stats.total_points >= 10 * pre.stats.full_evaluations
    assert pre.stats.savings >= 10.0

    # Screening summaries are exact, not merely close.
    by_key = {(r.label, r.series): r for r in full}
    for r in pre.screened:
        truth = by_key[(r.label, r.series)]
        assert r.summary["total_cycles"] == \
            truth.summary["total_cycles"]
        assert r.summary["steady_state_interval"] == \
            truth.summary["steady_state_interval"]


def test_trace_from_summary_matches_plan(shard_plan):
    from repro.explore import summarize_multichip

    summary = summarize_multichip(shard_plan.report, shard_plan)
    trace = trace_from_summary(summary, system=shard_plan.system)
    assert trace.meta["total_cycles"] == shard_plan.report.total_cycles
    assert trace.meta["steady_state_interval"] == \
        shard_plan.report.steady_state_interval
    assert trace.digest() == record_shard(shard_plan).digest()


# ---------------------------------------------------------------------------
# Serialization, analysis helpers, mutation parsing
# ---------------------------------------------------------------------------


def test_trace_roundtrip_preserves_digest(tmp_path, shard_trace):
    path = tmp_path / "trace.json"
    shard_trace.save(str(path))
    assert Trace.load(str(path)).digest() == shard_trace.digest()


def test_chrome_export_shape(serve_scenario):
    *_, trace = serve_scenario
    doc = trace.to_chrome()
    events = doc["traceEvents"]
    spans = [e for e in events if e["ph"] == "X"]
    metas = [e for e in events if e["ph"] == "M"]
    assert len(spans) == len(trace)
    assert len(metas) == 1 + len(trace.tracks())
    json.dumps(doc)   # must be serializable as-is


def test_attribution_covers_categories(fleet_scenario):
    *_, trace, _ = fleet_scenario
    att = attribute(trace)
    assert att["dominant"] in att["shares"]
    assert set(att["shares"]) == {"queue", "compute",
                                  "reconfiguration", "link"}
    assert att["total"] == pytest.approx(sum(att["magnitudes"].values()))


def test_tenant_rollup_counts_requests(serve_scenario):
    *_, trace = serve_scenario
    rollup = tenant_rollup(trace)
    assert sum(r["requests"] for r in rollup.values()) == \
        trace.meta["completed"]
    assert all(r["max_latency"] >= r["mean_latency"]
               for r in rollup.values())


def test_replica_rollup_accounts_all_replicas(fleet_scenario):
    _, _, _, report, trace, _ = fleet_scenario
    rollup = replica_rollup(trace)
    assert sum(r["completed"] for r in rollup.values()) == \
        trace.meta["completed"]
    assert all(r["busy_cycles"] > 0 for r in rollup.values())


def test_parse_mutation_roundtrip():
    m = parse_mutation("compute=2,link_bw=0.5,timeout=80000,chips=+1")
    assert m == Mutation(compute_scale=2.0, link_bandwidth_scale=0.5,
                         batch_timeout=80_000.0, chips_delta=1)
    assert parse_mutation("").is_identity()
    assert "compute=2" in m.describe()


def test_parse_mutation_rejects_bad_specs():
    from repro.errors import ScheduleError

    for bad in ("speed=2", "compute", "compute=zero", "compute=-1"):
        with pytest.raises(ScheduleError):
            parse_mutation(bad)
