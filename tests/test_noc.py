"""NoC cost models: structural properties of each topology."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.arch import NocSpec, htree, matrix_noc, mesh, shared_bus
from repro.arch.noc import htree_hops, mesh_hops, shared_bus_hops
from repro.errors import ArchitectureError


class TestMesh:
    def test_adjacent_cost_one(self):
        hops = mesh_hops(4, grid=(2, 2))
        assert hops[0][1] == 1
        assert hops[0][3] == 2  # diagonal

    def test_diameter(self):
        hops = mesh_hops(16, grid=(4, 4))
        assert max(max(row) for row in hops) == 6  # (4-1)+(4-1)

    def test_grid_too_small_rejected(self):
        with pytest.raises(ArchitectureError):
            mesh_hops(10, grid=(3, 3))


class TestHTree:
    def test_siblings_cost_two(self):
        hops = htree_hops(8)
        assert hops[0][1] == 2

    def test_opposite_halves_cost_most(self):
        hops = htree_hops(8)
        assert hops[0][7] == 2 * 3


class TestSharedBus:
    def test_uniform_single_hop(self):
        hops = shared_bus_hops(5)
        for i in range(5):
            for j in range(5):
                assert hops[i][j] == (0 if i == j else 1)


@pytest.mark.parametrize("spec", [mesh(), htree(), shared_bus()])
@given(n=st.integers(1, 24))
def test_hop_matrix_properties(spec, n):
    """Every topology yields a symmetric, zero-diagonal, non-negative
    cost matrix."""
    matrix = spec.hop_matrix(n)
    assert len(matrix) == n
    for i in range(n):
        assert matrix[i][i] == 0
        for j in range(n):
            assert matrix[i][j] == matrix[j][i]
            assert matrix[i][j] >= 0


class TestNocSpec:
    def test_ideal_is_free(self):
        spec = NocSpec("ideal")
        assert spec.average_cost(16) == 0.0
        assert spec.max_cost(16) == 0.0

    def test_unknown_topology_rejected(self):
        with pytest.raises(ArchitectureError):
            NocSpec("torus")

    def test_matrix_requires_costs(self):
        with pytest.raises(ArchitectureError):
            NocSpec("matrix")

    def test_matrix_noc(self):
        spec = matrix_noc([[0, 5], [5, 0]])
        assert spec.hop_matrix(2)[0][1] == 5
        assert spec.average_cost(2) == 5

    def test_matrix_too_small_rejected(self):
        spec = matrix_noc([[0, 1], [1, 0]])
        with pytest.raises(ArchitectureError):
            spec.hop_matrix(3)

    def test_cycles_per_hop_scales(self):
        assert mesh(cycles_per_hop=2.0).hop_matrix(4)[0][1] == 2.0

    def test_average_cost_single_unit(self):
        assert mesh().average_cost(1) == 0.0

    def test_negative_hop_cost_rejected(self):
        with pytest.raises(ArchitectureError):
            NocSpec("mesh", cycles_per_hop=-1)
