"""Meta-operators: construction rules, flow statistics, parallel blocks."""

import numpy as np
import pytest

from repro.errors import CodegenError
from repro.mops import (
    CustomOp,
    DigitalOp,
    MetaOperatorFlow,
    Mov,
    ParallelBlock,
    ReadCore,
    ReadRow,
    ReadXb,
    WriteRow,
    WriteXb,
    parallel,
    params_tuple,
)


class TestConstruction:
    def test_negative_addresses_rejected(self):
        with pytest.raises(CodegenError):
            ReadCore("conv", coreaddr=-1, src=0, dst=0)
        with pytest.raises(CodegenError):
            ReadXb(xbaddr=-1)
        with pytest.raises(CodegenError):
            ReadRow(xbaddr=0, row=-1)

    def test_zero_length_rejected(self):
        with pytest.raises(CodegenError):
            ReadXb(xbaddr=0, length=0)
        with pytest.raises(CodegenError):
            Mov(src=0, dst=0, length=0)

    def test_write_needs_symbol(self):
        with pytest.raises(CodegenError):
            WriteXb(xbaddr=0, mat="")
        with pytest.raises(CodegenError):
            WriteRow(xbaddr=0, row=0, length=4, value="")

    def test_bad_buffer_space_rejected(self):
        with pytest.raises(CodegenError):
            Mov(src=0, dst=0, length=1, src_space="L9")

    def test_digital_needs_sources(self):
        with pytest.raises(CodegenError):
            DigitalOp("relu", (), 0, 4)

    def test_parallel_flattens_singleton(self):
        op = ReadXb(0)
        assert parallel([op]) is op

    def test_parallel_no_nesting(self):
        block = ParallelBlock((ReadXb(0), ReadXb(1)))
        with pytest.raises(CodegenError):
            ParallelBlock((block,))

    def test_empty_parallel_rejected(self):
        with pytest.raises(CodegenError):
            ParallelBlock(())

    def test_is_cim_classification(self):
        assert ReadXb(0).is_cim
        assert WriteRow(0, 0, 1, "A").is_cim
        assert CustomOp("spike").is_cim
        assert not Mov(0, 0, 1).is_cim
        assert not DigitalOp("relu", (0,), 0, 1).is_cim

    def test_params_tuple_sorted(self):
        assert params_tuple({"b": 2, "a": 1}) == (("a", 1), ("b", 2))
        assert params_tuple(None) == ()


class TestFlow:
    def make_flow(self):
        flow = MetaOperatorFlow("t")
        flow.append(parallel([ReadXb(0), ReadXb(1), ReadXb(2)]))
        flow.append(Mov(0, 10, 4))
        flow.append(DigitalOp("relu", (10,), 20, 4))
        return flow

    def test_stats(self):
        stats = self.make_flow().stats()
        assert stats["cim.readxb"] == 3
        assert stats["mov"] == 1
        assert stats["relu"] == 1
        assert stats["total"] == 5
        assert stats["steps"] == 3

    def test_max_parallel_width(self):
        assert self.make_flow().max_parallel_width() == 3

    def test_peak_active_crossbars(self):
        flow = MetaOperatorFlow("t")
        flow.append(parallel([ReadXb(0, 2), ReadXb(4, 1)]))
        flow.append(ReadXb(0, 1))
        assert flow.peak_active_crossbars() == 3

    def test_leaves_iteration(self):
        leaves = list(self.make_flow().leaves())
        assert len(leaves) == 5

    def test_constant_pool(self):
        flow = MetaOperatorFlow("t")
        flow.add_constant("A", np.ones((2, 2)))
        assert flow.constant("A").shape == (2, 2)
        with pytest.raises(CodegenError):
            flow.add_constant("A", np.zeros(1))
        with pytest.raises(CodegenError):
            flow.constant("missing")

    def test_count(self):
        assert self.make_flow().count(ReadXb) == 3
        assert self.make_flow().count(Mov) == 1
