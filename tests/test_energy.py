"""Energy as a first-class objective: model, explore, scale, CLI.

Pins the PR's acceptance criteria: energy metrics in every layer's
report, latency×energy Pareto frontiers bit-identical between serial
and parallel runs and between fastpath on/off, link-transfer energy in
sharded plans, and the ``repro power`` / ``--power-budget`` /
``--objectives`` CLI surface.  (Power-capped *serving* is pinned next
to the other serving tests, in ``tests/test_serve.py``.)
"""

import json

import pytest

from repro.arch import (
    ChipLink,
    MultiChipSystem,
    functional_testbed,
    isaac_baseline,
    isaac_flash,
)
from repro.cli import main
from repro.errors import ArchitectureError
from repro.explore import (
    ENERGY_OBJECTIVES,
    OBJECTIVE_ALIASES,
    SweepRunner,
    SweepSpace,
    evaluate_point,
    frontier_labels,
    pareto_frontier,
    resolve_objectives,
    to_csv,
    to_json,
)
from repro.models import lenet, mlp, resnet18
from repro.perf import fastpath
from repro.sched import CIMMLC, CompilerOptions, no_optimization
from repro.scale import shard
from repro.sim.power import E_WRITE_PER_BIT, PowerModel


# ---------------------------------------------------------------------------
# Power model: reconfiguration + weight-write energy
# ---------------------------------------------------------------------------


class TestWeightWriteEnergy:
    def test_single_segment_pays_no_per_inference_reconfiguration(self):
        report = CIMMLC(isaac_baseline()).compile(resnet18()).report
        assert len(report.segments) == 1
        assert report.power.energy_reconfiguration == 0.0
        assert report.weight_write_energy > 0
        assert report.energy_per_inference == report.power.total_energy

    def test_multi_segment_pays_reconfiguration_energy(self):
        small = isaac_baseline().with_cores(8)
        report = CIMMLC(small).compile(resnet18()).report
        assert len(report.segments) > 1
        assert report.power.energy_reconfiguration == \
            pytest.approx(report.weight_write_energy)
        assert report.power.energy_reconfiguration > 0

    def test_write_energy_scales_with_cell_write_ratio(self):
        graph = resnet18()
        reram = CIMMLC(isaac_baseline()).compile(graph).report
        flash = CIMMLC(isaac_flash()).compile(graph).report
        # Same geometry, FLASH writes cost 5x ReRAM writes (100 vs 20).
        assert flash.weight_write_energy == \
            pytest.approx(5.0 * reram.weight_write_energy)

    def test_write_energy_matches_weight_bits(self):
        arch = functional_testbed()
        result = CIMMLC(arch).compile(mlp())
        bits = sum(d.profile.weight_bits
                   for d in result.schedule.decisions.values()
                   if d.profile.is_cim)
        expected = bits * E_WRITE_PER_BIT * arch.xb.cell_type.write_cost_ratio
        assert result.report.weight_write_energy == pytest.approx(expected)

    def test_breakdown_includes_reconfiguration_and_sums_to_one(self):
        report = CIMMLC(isaac_baseline().with_cores(8)) \
            .compile(resnet18()).report
        breakdown = report.power.breakdown()
        assert set(breakdown) == \
            {"crossbar", "converter", "movement", "reconfiguration"}
        assert sum(breakdown.values()) == pytest.approx(1.0)
        assert breakdown["reconfiguration"] > 0

    @pytest.mark.parametrize("graph_fn", [mlp, lenet, resnet18])
    def test_fastpath_power_reports_bit_identical(self, graph_fn):
        graph = graph_fn()
        arch = isaac_baseline()
        with fastpath(False):
            ref = CIMMLC(arch).compile(graph).report
        with fastpath(True):
            fast = CIMMLC(arch).compile(graph).report
        assert ref.power == fast.power
        assert ref.weight_write_energy == fast.weight_write_energy


# ---------------------------------------------------------------------------
# Explore: summary metrics, aliases, frontiers
# ---------------------------------------------------------------------------


def _space(core_numbers=(8, 16), graph_fn=mlp):
    return SweepSpace.grid(
        functional_testbed(), graph_fn(),
        {"cores": list(core_numbers)},
        series=[("baseline", None), ("CIM-MLC", CompilerOptions())])


class TestExploreEnergyMetrics:
    def test_summary_carries_energy_and_area(self):
        sweep = SweepRunner().run(_space())
        for r in sweep:
            s = r.summary
            assert s["energy_total"] == pytest.approx(
                sum(s["energy"].values()))
            assert s["energy_per_inference"] == s["energy_total"]
            assert s["area_crossbars"] > 0
            assert s["cores_used"] > 0
            assert "reconfiguration" in s["energy"]
            assert r.energy_per_inference == s["energy_per_inference"]

    def test_objective_aliases_resolve(self):
        assert resolve_objectives(["latency", "energy", "area"]) == \
            ("total_cycles", "energy_total", "area_crossbars")
        assert resolve_objectives(["steady_state_interval"]) == \
            ("steady_state_interval",)
        with pytest.raises(ArchitectureError):
            resolve_objectives([])
        # Every alias points at a key the summary actually carries.
        summary = next(iter(SweepRunner().run(_space((8,))))).summary
        for key in OBJECTIVE_ALIASES.values():
            assert key in summary, key

    def test_energy_frontier_is_nondominated_subset(self):
        sweep = SweepRunner().run(_space((4, 8, 16)))
        frontier = pareto_frontier(list(sweep), ENERGY_OBJECTIVES)
        assert frontier
        assert set(id(r) for r in frontier) <= set(id(r) for r in sweep)
        # Alias spelling extracts the identical frontier.
        aliased = pareto_frontier(
            list(sweep), ("latency", "energy_per_inference", "area"))
        assert [r.label for r in aliased] == [r.label for r in frontier]

    def test_energy_frontier_serial_parallel_fastpath_bit_identical(self):
        space = _space((4, 8, 16), lenet)

        def run(workers, fast):
            with fastpath(fast):
                with SweepRunner(workers=workers) as runner:
                    sweep = runner.run(_space((4, 8, 16), lenet))
                return ([r.summary for r in sweep],
                        frontier_labels(sweep, ENERGY_OBJECTIVES))

        serial_fast = run(1, True)
        parallel_fast = run(2, True)
        serial_ref = run(1, False)
        assert serial_fast == parallel_fast      # bit-identical summaries
        assert serial_fast == serial_ref
        assert len(space) == len(serial_fast[0])

    def test_cache_roundtrip_preserves_energy_exactly(self, tmp_path):
        live = SweepRunner(cache_dir=str(tmp_path)).run(_space())
        replay = SweepRunner(cache_dir=str(tmp_path)).run(_space())
        assert replay.all_cached
        assert [r.summary for r in replay] == [r.summary for r in live]

    def test_csv_json_power_budget_annotation(self):
        sweep = SweepRunner().run(_space((8, 16)))
        budget = sorted(r.peak_power for r in sweep)[0]  # only min feasible
        csv_text = to_csv(sweep, pareto=True, power_budget=budget)
        header = csv_text.splitlines()[0].split(",")
        assert "within_power_budget" in header and "pareto" in header
        doc = json.loads(to_json(sweep, pareto=True, power_budget=budget))
        feasible = [p for p in doc["points"] if p["within_power_budget"]]
        assert 0 < len(feasible) < len(doc["points"]) or \
            all(p["within_power_budget"] for p in doc["points"])
        # No infeasible point may be marked pareto.
        assert not any(p["pareto"] and not p["within_power_budget"]
                       for p in doc["points"])

    def test_multichip_summary_carries_link_energy(self):
        from repro.explore import SweepPoint

        point = SweepPoint("2chips", "CIM-MLC",
                           isaac_baseline().with_cores(200), resnet18(),
                           CompilerOptions(), chips=2)
        summary = evaluate_point(point)
        assert summary["energy"]["link"] > 0
        assert summary["scale"]["link_energy"] == \
            pytest.approx(summary["energy"]["link"])
        assert len(summary["scale"]["chip_peak_powers"]) == 2
        assert summary["energy_total"] == pytest.approx(
            sum(summary["energy"].values()))


# ---------------------------------------------------------------------------
# Scale: link-transfer energy, per-chip power
# ---------------------------------------------------------------------------


class TestScaleEnergy:
    @pytest.fixture(scope="class")
    def plan(self):
        return shard(resnet18(),
                     MultiChipSystem(isaac_baseline().with_cores(200), 2))

    def test_pipeline_energy_is_stages_plus_links(self, plan):
        rep = plan.report
        stage_energy = sum(r.power.total_energy for r in rep.stages)
        assert rep.link_energy > 0
        assert rep.total_energy == \
            pytest.approx(stage_energy + rep.link_energy)
        assert rep.energy_per_inference == rep.total_energy
        assert len(rep.chip_peak_powers) == 2
        assert rep.peak_power == pytest.approx(sum(rep.chip_peak_powers))

    def test_transfer_energy_prices_bits_and_hops(self):
        link = ChipLink(energy_per_bit=0.5)
        assert link.transfer_energy(100) == pytest.approx(50.0)
        assert link.transfer_energy(100, hops=3) == pytest.approx(150.0)
        assert link.transfer_energy(0) == 0.0
        with pytest.raises(ArchitectureError):
            ChipLink(energy_per_bit=-1.0)

    def test_link_energy_scales_with_energy_per_bit(self, plan):
        pricey = shard(resnet18(), MultiChipSystem(
            isaac_baseline().with_cores(200), 2,
            link=ChipLink(energy_per_bit=0.15)))
        assert pricey.report.link_energy == \
            pytest.approx(10.0 * plan.report.link_energy)

    def test_to_dict_and_tables_carry_energy(self, plan):
        doc = plan.to_dict()
        assert doc["pipeline"]["energy_per_inference"] > 0
        assert doc["pipeline"]["link_energy"] == \
            pytest.approx(plan.report.link_energy)
        assert all(s["peak_power"] > 0 for s in doc["stages"])
        assert all(t["energy"] > 0 for t in doc["links"])
        from repro.scale import link_table, pipeline_summary

        assert "energy" in link_table(plan)
        assert "energy/inference" in pipeline_summary(plan)


# ---------------------------------------------------------------------------
# CLI: repro power, sweep --objectives/--power-budget
# ---------------------------------------------------------------------------


class TestPowerCommand:
    def test_table(self, capsys):
        main(["power", "--arch", "functional-testbed",
              "--models", "mlp,lenet"])
        out = capsys.readouterr().out
        assert "energy/inf" in out and "write energy" in out
        assert "mlp" in out and "lenet" in out

    def test_json(self, capsys):
        main(["power", "--arch", "functional-testbed", "--models", "mlp",
              "--format", "json"])
        doc = json.loads(capsys.readouterr().out)
        assert doc["arch"] == "functional-testbed"
        row = doc["models"][0]
        assert row["energy_per_inference"] > 0
        assert row["weight_write_energy"] > 0
        assert sum(row["breakdown"].values()) == pytest.approx(1.0)

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit, match="unknown model"):
            main(["power", "--models", "skynet"])


class TestSweepEnergyCLI:
    ARGS = ["sweep", "--model", "mlp", "--preset", "functional",
            "--vary", "cores=8,16", "--levels", "CIM-MLC", "--no-cache"]

    def test_energy_objectives_frontier(self, capsys):
        main(self.ARGS + ["--pareto", "--objectives", "latency,energy,area"])
        out = capsys.readouterr().out
        assert "pareto frontier (min total_cycles, energy_total, " \
            "area_crossbars)" in out

    def test_power_budget_filters_and_reports(self, capsys):
        main(self.ARGS + ["--power-budget", "0.001", "--pareto"])
        out = capsys.readouterr().out
        assert "0/2 points feasible" in out

    def test_bad_objectives_rejected(self):
        with pytest.raises(SystemExit):
            main(self.ARGS + ["--objectives", ""])

    def test_serve_sharded_power_budget_rejected(self):
        with pytest.raises(SystemExit, match="spatial/temporal"):
            main(["serve", "--arch", "functional-testbed",
                  "--tenants", "mlp", "--mode", "sharded",
                  "--power-budget", "10"])
