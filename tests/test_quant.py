"""Quantization and crossbar cell encoding (offset-binary + bit slicing)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.errors import SimulationError
from repro.graph import GraphBuilder
from repro.models import tiny_conv
from repro.quant import (
    decode_columns,
    encode_matrix,
    quantize,
    random_input,
    random_weights,
)


class TestQuantize:
    def test_zero_tensor(self):
        assert quantize(np.zeros((3, 3))).sum() == 0

    def test_range(self):
        q = quantize(np.linspace(-1, 1, 100), bits=8)
        assert q.max() == 127
        assert q.min() == -127

    def test_one_bit_rejected(self):
        with pytest.raises(SimulationError):
            quantize(np.ones(3), bits=1)


class TestRandomTensors:
    def test_weights_deterministic(self):
        g = tiny_conv()
        w1 = random_weights(g, seed=5)
        w2 = random_weights(g, seed=5)
        for name in w1:
            assert np.array_equal(w1[name], w2[name])

    def test_weights_respect_range(self):
        g = tiny_conv()
        for w in random_weights(g, low=-4, high=4).values():
            assert w.min() >= -4 and w.max() <= 4

    def test_only_weight_tensors(self):
        g = tiny_conv()
        names = set(random_weights(g))
        assert all(g.tensors[n].is_weight for n in names)

    def test_inputs_cover_graph_inputs(self):
        g = tiny_conv()
        assert set(random_input(g)) == set(g.inputs)


class TestCellEncoding:
    def test_known_value(self):
        # weight 5, 8-bit, 2-bit cells: offset-binary 133 = 2*64+0*16+1*4+1
        cells = encode_matrix(np.array([[5]]), bits=8, cell_bits=2)
        assert cells.shape == (1, 4)
        assert list(cells[0]) == [1, 1, 0, 2]  # LSB slice first

    def test_cells_within_precision(self):
        m = np.arange(-8, 8).reshape(4, 4)
        cells = encode_matrix(m, bits=8, cell_bits=2)
        assert cells.min() >= 0 and cells.max() < 4

    def test_out_of_range_rejected(self):
        with pytest.raises(SimulationError):
            encode_matrix(np.array([[300]]), bits=8, cell_bits=2)

    def test_non_2d_rejected(self):
        with pytest.raises(SimulationError):
            encode_matrix(np.zeros(4), bits=8, cell_bits=2)

    def test_decode_requires_divisible_length(self):
        with pytest.raises(SimulationError):
            decode_columns(np.zeros(5), slices=2, cell_bits=2)


@settings(max_examples=50, deadline=None)
@given(
    matrix=hnp.arrays(np.int64, (4, 3),
                      elements=st.integers(-128, 127)),
    inputs=hnp.arrays(np.int64, (4,),
                      elements=st.integers(-128, 127)),
    cell_bits=st.sampled_from([1, 2, 4]),
)
def test_encode_mvm_decode_is_exact(matrix, inputs, cell_bits):
    """The full analog path is exact: encode -> per-slice column sums ->
    shift-add -> offset correction == plain integer MVM."""
    bits = 8
    cells = encode_matrix(matrix, bits, cell_bits)
    raw = inputs @ cells                       # bitline partial sums
    slices = -(-bits // cell_bits)
    correction = (2 ** (bits - 1)) * int(inputs.sum())
    decoded = decode_columns(raw, slices, cell_bits, correction)
    assert np.array_equal(decoded, inputs @ matrix)


@settings(max_examples=20, deadline=None)
@given(
    matrix=hnp.arrays(np.int64, (8, 2), elements=st.integers(-8, 7)),
)
def test_encoding_is_per_column_block(matrix):
    """Each weight column occupies `slices` adjacent cell columns."""
    cells = encode_matrix(matrix, bits=4, cell_bits=2)
    slices = 2
    for c in range(matrix.shape[1]):
        block = cells[:, c * slices:(c + 1) * slices]
        reconstructed = sum(block[:, j] << (2 * j) for j in range(slices))
        assert np.array_equal(reconstructed - 8, matrix[:, c])
