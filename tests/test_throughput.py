"""Steady-state throughput (batch pipeline) metric."""

import pytest

from repro.arch import isaac_baseline
from repro.models import resnet18
from repro.sched import CIMMLC, CompilerOptions, no_optimization


class TestThroughput:
    def test_pipelined_throughput_beats_latency_rate(self):
        arch = isaac_baseline()
        graph = resnet18()
        report = CIMMLC(arch).compile(graph).report
        # Streaming images completes faster than one-at-a-time.
        assert report.steady_state_interval <= report.total_cycles
        assert report.throughput >= 1.0 / report.total_cycles

    def test_sequential_interval_is_total(self):
        arch = isaac_baseline()
        graph = resnet18()
        report = no_optimization(graph, arch).report
        assert report.steady_state_interval == report.total_cycles

    def test_duplication_raises_throughput(self):
        arch = isaac_baseline()
        graph = resnet18()
        no_dup = CIMMLC(arch, CompilerOptions(
            max_level="CG", duplicate=False)).compile(graph).report
        dup = CIMMLC(arch, CompilerOptions(
            max_level="CG")).compile(graph).report
        assert dup.throughput > no_dup.throughput
