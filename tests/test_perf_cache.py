"""Fast path vs. reference: bit-identical results, observable reuse.

Three layers of pinning:

* **kernel equality** — every vectorized kernel (NoC costs, latency/
  fill evaluation, duplication searches, placement scoring) produces
  values ``==`` to the scalar reference across models, presets, and
  topologies;
* **report equality** — whole ``PerformanceReport`` /
  ``MultiChipReport`` objects match field-for-field between the two
  paths;
* **cache behaviour** — :class:`repro.perf.CompileCache` hit counters
  prove profiles/duplication searches are shared, the sweep runner
  deduplicates identical points, and its worker pool persists across
  runs.
"""

import pytest

from repro.arch import (
    MultiChipSystem,
    functional_testbed,
    isaac_baseline,
    noc,
    table2_example,
)
from repro.explore import SweepPoint, SweepRunner, SweepSpace, level_series
from repro.explore import runner as runner_mod
from repro.models import lenet, mlp, resnet18, vit_tiny
from repro.perf import CompileCache, fastpath, fastpath_enabled, set_fastpath
from repro.sched import CIMMLC, CompilerOptions, no_optimization
from repro.sched.cg import duplicate_min_bottleneck, duplicate_min_total
from repro.sched.costs import CostModel
from repro.sched.placement import place_greedy
from repro.scale import shard
from repro.sim.performance import PerformanceSimulator


def _report_fields(report):
    return {
        "total": report.total_cycles,
        "compute": report.compute_cycles,
        "reconf": report.reconfiguration_cycles,
        "segments": report.segments,
        "op_latency": report.op_latency,
        "power": report.power,
        "weight_load": report.weight_load_cycles,
        "intervals": report.segment_intervals,
        "steady": report.steady_state_interval,
    }


class TestFastpathSwitch:
    def test_toggle_and_context(self):
        before = fastpath_enabled()
        try:
            assert set_fastpath(False) == before
            assert not fastpath_enabled()
            with fastpath(True):
                assert fastpath_enabled()
            assert not fastpath_enabled()
        finally:
            set_fastpath(before)


class TestNocKernelEquality:
    @pytest.mark.parametrize("spec", [
        noc.mesh(1.0), noc.mesh(2.5), noc.mesh(1.0, grid=(4, 8)),
        noc.htree(1.0), noc.htree(0.7), noc.shared_bus(3.0),
        noc.NocSpec("ideal"),
        noc.matrix_noc([[0.5 * abs(i - j) + (0.1 if i == j else 0.0)
                         for j in range(32)] for i in range(32)]),
    ])
    @pytest.mark.parametrize("n", [1, 2, 7, 17, 32])
    def test_average_and_max_cost(self, spec, n):
        with fastpath(False):
            ref = (spec.average_cost(n), spec.max_cost(n))
        with fastpath(True):
            fast = (spec.average_cost(n), spec.max_cost(n))
        assert ref == fast  # exact, not approx


#: (model factory, architecture factory) pairs covering the three
#: computing modes and both big and tiny graphs.
CASES = [
    (mlp, functional_testbed),
    (lenet, isaac_baseline),
    (vit_tiny, lambda: isaac_baseline().with_xb_size((128, 256))),
    (mlp, table2_example),
]


class TestReportEquality:
    @pytest.mark.parametrize("model,arch_fn", CASES)
    def test_compile_reports_identical(self, model, arch_fn):
        arch = arch_fn()
        with fastpath(False):
            ref = CIMMLC(arch).compile(model())
        with fastpath(True):
            fast = CIMMLC(arch).compile(model())
        assert _report_fields(ref.report) == _report_fields(fast.report)

    @pytest.mark.parametrize("model,arch_fn", CASES[:2])
    def test_baseline_reports_identical(self, model, arch_fn):
        arch = arch_fn()
        with fastpath(False):
            ref = no_optimization(model(), arch)
        with fastpath(True):
            fast = no_optimization(model(), arch)
        assert _report_fields(ref.report) == _report_fields(fast.report)

    def test_simulator_identical_on_one_schedule(self):
        arch = isaac_baseline()
        schedule = CIMMLC(arch).schedule(lenet())
        with fastpath(False):
            ref = PerformanceSimulator(arch).run(schedule)
        with fastpath(True):
            fast = PerformanceSimulator(arch).run(schedule)
        assert _report_fields(ref) == _report_fields(fast)

    def test_multichip_report_identical(self):
        with fastpath(False):
            ref = shard(resnet18(), MultiChipSystem(isaac_baseline(), 2))
        with fastpath(True):
            fast = shard(resnet18(), MultiChipSystem(isaac_baseline(), 2))
        assert ref.stages == fast.stages
        assert ref.report.total_cycles == fast.report.total_cycles
        assert ref.report.steady_state_interval == \
            fast.report.steady_state_interval
        assert ref.report.channel_occupancies == \
            fast.report.channel_occupancies
        assert ref.report.transfers == fast.report.transfers
        for a, b in zip(ref.report.stages, fast.report.stages):
            assert _report_fields(a) == _report_fields(b)


class TestSearchKernelEquality:
    # table2_example is excluded: the whole model exceeds its 2-core
    # chip, so a single-segment search raises CapacityError on both
    # paths (the compile path segments first — covered above).
    @pytest.mark.parametrize("model,arch_fn", CASES[:3])
    def test_duplication_searches_identical(self, model, arch_fn):
        arch = arch_fn()
        profiles = list(CostModel(arch).profiles(model()).values())
        budget = arch.chip.core_number
        with fastpath(False):
            ref = (duplicate_min_bottleneck(profiles, budget),
                   duplicate_min_total(profiles, budget))
        with fastpath(True):
            fast = (duplicate_min_bottleneck(profiles, budget),
                    duplicate_min_total(profiles, budget))
        assert ref == fast

    def test_placement_identical(self):
        schedule = CIMMLC(isaac_baseline()).schedule(lenet())
        with fastpath(False):
            ref = place_greedy(schedule, io_anchor=0)
        with fastpath(True):
            fast = place_greedy(schedule, io_anchor=0)
        assert ref == fast


class TestCompileCache:
    def test_profiles_shared_across_compilations(self):
        cache = CompileCache()
        arch = functional_testbed()
        a = CIMMLC(arch, cache=cache).compile(mlp())
        misses = cache.profile_misses
        b = CIMMLC(arch, cache=cache).compile(mlp())
        assert cache.profile_hits >= 1
        assert cache.profile_misses == misses   # no new profile work
        assert _report_fields(a.report) == _report_fields(b.report)

    def test_content_addressing_ignores_object_identity(self):
        # Two distinct but equal graphs / architectures share entries.
        cache = CompileCache()
        CIMMLC(functional_testbed(), cache=cache).compile(mlp())
        CIMMLC(functional_testbed(), cache=cache).compile(mlp())
        assert cache.profile_hits >= 1 and cache.dup_hits >= 1

    def test_series_share_dup_searches(self):
        # CG and CG+MVM run the same CG-level search: one miss, one hit.
        cache = CompileCache()
        arch = isaac_baseline()
        CIMMLC(arch, CompilerOptions(max_level="CG"),
               cache=cache).compile(lenet())
        hits_before = cache.dup_hits
        CIMMLC(arch, CompilerOptions(max_level="MVM"),
               cache=cache).compile(lenet())
        assert cache.dup_hits > hits_before
        assert cache.segment_hits >= 1

    def test_stats_and_clear(self):
        cache = CompileCache()
        CIMMLC(functional_testbed(), cache=cache).compile(mlp())
        stats = cache.stats()
        assert stats["profiles_stored"] >= 1
        cache.clear()
        stats = cache.stats()
        assert stats["profiles_stored"] == 0 and stats["profile_hits"] == 0

    def test_cache_does_not_change_results(self):
        arch = functional_testbed()
        plain = CIMMLC(arch).compile(mlp())
        cached = CIMMLC(arch, cache=CompileCache()).compile(mlp())
        assert _report_fields(plain.report) == _report_fields(cached.report)


class TestSweepRunnerFastPath:
    def _point(self, label, arch, graph):
        return SweepPoint(label, "CG", arch, graph,
                          CompilerOptions(max_level="CG"))

    def test_dedup_identical_points(self, monkeypatch):
        base = functional_testbed()
        graph = mlp()
        space = SweepSpace([
            self._point("a", base, graph),
            self._point("twin-of-a", base, graph),
            self._point("b", base.with_cores(8), graph),
        ])
        calls = []
        real = runner_mod.evaluate_point
        monkeypatch.setattr(runner_mod, "evaluate_point",
                            lambda p: calls.append(p.label) or real(p))
        result = SweepRunner().run(space)
        assert result.deduped == 1
        assert result.cache_misses == 2
        assert sorted(calls) == ["a", "b"]      # twin never dispatched
        assert result.results[0].summary == result.results[1].summary
        assert len(result) == 3                 # order and size preserved

    def test_dedup_disabled_on_reference_path(self, monkeypatch):
        base = functional_testbed()
        graph = mlp()
        space = SweepSpace([self._point("a", base, graph),
                            self._point("twin", base, graph)])
        calls = []
        real = runner_mod.evaluate_point
        monkeypatch.setattr(runner_mod, "evaluate_point",
                            lambda p: calls.append(p.label) or real(p))
        with fastpath(False):
            result = SweepRunner().run(space)
        assert result.deduped == 0 and len(calls) == 2

    def test_pool_persists_until_new_graph(self):
        base = functional_testbed()
        with SweepRunner(workers=2) as runner:
            series = level_series(["CG"])
            space1 = SweepSpace.from_arch_points(
                [("c8", base.with_cores(8)), ("c16", base.with_cores(16))],
                mlp(), series=series)
            runner.run(space1)
            pool = runner._pool
            assert pool is not None
            space2 = SweepSpace.from_arch_points(
                [("c32", base.with_cores(32)),
                 ("c64", base.with_cores(64))], mlp(), series=series)
            runner.run(space2)
            assert runner._pool is pool         # same graph: reused
            space3 = SweepSpace.from_arch_points(
                [("c8", base.with_cores(8)), ("c16", base.with_cores(16))],
                lenet(), series=series)
            runner.run(space3)
            assert runner._pool is not pool     # new graph: recreated
        assert runner._pool is None             # context exit closed it

    def test_parallel_pool_matches_serial(self):
        base = functional_testbed()
        series = level_series(["baseline", "CG"])
        def space():
            return SweepSpace.from_arch_points(
                [("c8", base.with_cores(8)), ("c16", base.with_cores(16))],
                mlp(), series=series)
        serial = SweepRunner(workers=1).run(space())
        with SweepRunner(workers=2) as runner:
            parallel = runner.run(space())
        assert [r.summary for r in serial] == [r.summary for r in parallel]

    def test_reference_path_matches_fast_path(self):
        base = functional_testbed()
        series = level_series(["baseline", "CG"])
        def space():
            return SweepSpace.from_arch_points(
                [("c8", base.with_cores(8))], mlp(), series=series)
        with fastpath(False):
            ref = SweepRunner().run(space())
        with fastpath(True):
            fast = SweepRunner().run(space())
        assert [r.summary for r in ref] == [r.summary for r in fast]


class TestGraphSignature:
    def test_cached_and_invalidated(self):
        g = mlp()
        sig = g.signature()
        assert g.signature() == sig             # cached, stable
        assert mlp().signature() == sig         # content-addressed
        from repro.graph import TensorSpec
        g.add_tensor(TensorSpec("extra", (1, 4), 8))
        assert g.signature() != sig             # mutation invalidates

    def test_annotations_do_not_change_identity(self):
        g = lenet()
        sig = g.signature()
        CIMMLC(isaac_baseline()).compile(g)     # writes annotations
        assert g.signature() == sig

    def test_node_lookup_indexed(self):
        g = mlp()
        name = g.nodes[0].name
        assert g.node(name) is g.nodes[0]
        from repro.errors import GraphError
        with pytest.raises(GraphError):
            g.node("no-such-node")
