"""Fast path vs. reference: bit-identical results, observable reuse.

Three layers of pinning:

* **kernel equality** — every vectorized kernel (NoC costs, latency/
  fill evaluation, duplication searches, placement scoring) produces
  values ``==`` to the scalar reference across models, presets, and
  topologies;
* **report equality** — whole ``PerformanceReport`` /
  ``MultiChipReport`` objects match field-for-field between the two
  paths;
* **cache behaviour** — :class:`repro.perf.CompileCache` hit counters
  prove profiles/duplication searches are shared, the sweep runner
  deduplicates identical points, and its worker pool persists across
  runs;
* **disk memo integrity** — :class:`repro.perf.DiskCompileCache`
  survives corrupted/truncated entries (clean recompile), orphans
  entries on a schema bump, and keeps two concurrent processes
  bit-identical;
* **incremental recompilation** — :class:`repro.perf.
  IncrementalCompiler` delta-patches a one-axis architecture family
  with exactly one full compile, bit-identical to from-scratch.
"""

import json
import os
import subprocess
import sys

import pytest

import repro
from repro.arch import (
    MultiChipSystem,
    functional_testbed,
    isaac_baseline,
    noc,
    table2_example,
)
from repro.explore import SweepPoint, SweepRunner, SweepSpace, level_series
from repro.explore import runner as runner_mod
from repro.models import lenet, mlp, resnet18, vit_tiny
from repro.perf import (
    CompileCache,
    DiskCompileCache,
    IncrementalCompiler,
    default_compile_cache,
    disk_cache_enabled,
    fastpath,
    fastpath_enabled,
    set_fastpath,
)
from repro.perf import diskcache as diskcache_mod
from repro.sched import CIMMLC, CompilerOptions, no_optimization
from repro.sched.cg import duplicate_min_bottleneck, duplicate_min_total
from repro.sched.costs import CostModel
from repro.sched.placement import place_greedy
from repro.scale import shard
from repro.sim.performance import PerformanceSimulator


def _report_fields(report):
    return {
        "total": report.total_cycles,
        "compute": report.compute_cycles,
        "reconf": report.reconfiguration_cycles,
        "segments": report.segments,
        "op_latency": report.op_latency,
        "power": report.power,
        "weight_load": report.weight_load_cycles,
        "intervals": report.segment_intervals,
        "steady": report.steady_state_interval,
    }


class TestFastpathSwitch:
    def test_toggle_and_context(self):
        before = fastpath_enabled()
        try:
            assert set_fastpath(False) == before
            assert not fastpath_enabled()
            with fastpath(True):
                assert fastpath_enabled()
            assert not fastpath_enabled()
        finally:
            set_fastpath(before)


class TestNocKernelEquality:
    @pytest.mark.parametrize("spec", [
        noc.mesh(1.0), noc.mesh(2.5), noc.mesh(1.0, grid=(4, 8)),
        noc.htree(1.0), noc.htree(0.7), noc.shared_bus(3.0),
        noc.NocSpec("ideal"),
        noc.matrix_noc([[0.5 * abs(i - j) + (0.1 if i == j else 0.0)
                         for j in range(32)] for i in range(32)]),
    ])
    @pytest.mark.parametrize("n", [1, 2, 7, 17, 32])
    def test_average_and_max_cost(self, spec, n):
        with fastpath(False):
            ref = (spec.average_cost(n), spec.max_cost(n))
        with fastpath(True):
            fast = (spec.average_cost(n), spec.max_cost(n))
        assert ref == fast  # exact, not approx


#: (model factory, architecture factory) pairs covering the three
#: computing modes and both big and tiny graphs.
CASES = [
    (mlp, functional_testbed),
    (lenet, isaac_baseline),
    (vit_tiny, lambda: isaac_baseline().with_xb_size((128, 256))),
    (mlp, table2_example),
]


class TestReportEquality:
    @pytest.mark.parametrize("model,arch_fn", CASES)
    def test_compile_reports_identical(self, model, arch_fn):
        arch = arch_fn()
        with fastpath(False):
            ref = CIMMLC(arch).compile(model())
        with fastpath(True):
            fast = CIMMLC(arch).compile(model())
        assert _report_fields(ref.report) == _report_fields(fast.report)

    @pytest.mark.parametrize("model,arch_fn", CASES[:2])
    def test_baseline_reports_identical(self, model, arch_fn):
        arch = arch_fn()
        with fastpath(False):
            ref = no_optimization(model(), arch)
        with fastpath(True):
            fast = no_optimization(model(), arch)
        assert _report_fields(ref.report) == _report_fields(fast.report)

    def test_simulator_identical_on_one_schedule(self):
        arch = isaac_baseline()
        schedule = CIMMLC(arch).schedule(lenet())
        with fastpath(False):
            ref = PerformanceSimulator(arch).run(schedule)
        with fastpath(True):
            fast = PerformanceSimulator(arch).run(schedule)
        assert _report_fields(ref) == _report_fields(fast)

    def test_multichip_report_identical(self):
        with fastpath(False):
            ref = shard(resnet18(), MultiChipSystem(isaac_baseline(), 2))
        with fastpath(True):
            fast = shard(resnet18(), MultiChipSystem(isaac_baseline(), 2))
        assert ref.stages == fast.stages
        assert ref.report.total_cycles == fast.report.total_cycles
        assert ref.report.steady_state_interval == \
            fast.report.steady_state_interval
        assert ref.report.channel_occupancies == \
            fast.report.channel_occupancies
        assert ref.report.transfers == fast.report.transfers
        for a, b in zip(ref.report.stages, fast.report.stages):
            assert _report_fields(a) == _report_fields(b)


class TestSearchKernelEquality:
    # table2_example is excluded: the whole model exceeds its 2-core
    # chip, so a single-segment search raises CapacityError on both
    # paths (the compile path segments first — covered above).
    @pytest.mark.parametrize("model,arch_fn", CASES[:3])
    def test_duplication_searches_identical(self, model, arch_fn):
        arch = arch_fn()
        profiles = list(CostModel(arch).profiles(model()).values())
        budget = arch.chip.core_number
        with fastpath(False):
            ref = (duplicate_min_bottleneck(profiles, budget),
                   duplicate_min_total(profiles, budget))
        with fastpath(True):
            fast = (duplicate_min_bottleneck(profiles, budget),
                    duplicate_min_total(profiles, budget))
        assert ref == fast

    def test_placement_identical(self):
        schedule = CIMMLC(isaac_baseline()).schedule(lenet())
        with fastpath(False):
            ref = place_greedy(schedule, io_anchor=0)
        with fastpath(True):
            fast = place_greedy(schedule, io_anchor=0)
        assert ref == fast


class TestCompileCache:
    def test_profiles_shared_across_compilations(self):
        cache = CompileCache()
        arch = functional_testbed()
        a = CIMMLC(arch, cache=cache).compile(mlp())
        misses = cache.profile_misses
        b = CIMMLC(arch, cache=cache).compile(mlp())
        assert cache.profile_hits >= 1
        assert cache.profile_misses == misses   # no new profile work
        assert _report_fields(a.report) == _report_fields(b.report)

    def test_content_addressing_ignores_object_identity(self):
        # Two distinct but equal graphs / architectures share entries.
        cache = CompileCache()
        CIMMLC(functional_testbed(), cache=cache).compile(mlp())
        CIMMLC(functional_testbed(), cache=cache).compile(mlp())
        assert cache.profile_hits >= 1 and cache.dup_hits >= 1

    def test_series_share_dup_searches(self):
        # CG and CG+MVM run the same CG-level search: one miss, one hit.
        cache = CompileCache()
        arch = isaac_baseline()
        CIMMLC(arch, CompilerOptions(max_level="CG"),
               cache=cache).compile(lenet())
        hits_before = cache.dup_hits
        CIMMLC(arch, CompilerOptions(max_level="MVM"),
               cache=cache).compile(lenet())
        assert cache.dup_hits > hits_before
        assert cache.segment_hits >= 1

    def test_stats_and_clear(self):
        cache = CompileCache()
        CIMMLC(functional_testbed(), cache=cache).compile(mlp())
        stats = cache.stats()
        assert stats["profiles_stored"] >= 1
        cache.clear()
        stats = cache.stats()
        assert stats["profiles_stored"] == 0 and stats["profile_hits"] == 0

    def test_cache_does_not_change_results(self):
        arch = functional_testbed()
        plain = CIMMLC(arch).compile(mlp())
        cached = CIMMLC(arch, cache=CompileCache()).compile(mlp())
        assert _report_fields(plain.report) == _report_fields(cached.report)


class TestSweepRunnerFastPath:
    def _point(self, label, arch, graph):
        return SweepPoint(label, "CG", arch, graph,
                          CompilerOptions(max_level="CG"))

    def test_dedup_identical_points(self, monkeypatch):
        base = functional_testbed()
        graph = mlp()
        space = SweepSpace([
            self._point("a", base, graph),
            self._point("twin-of-a", base, graph),
            self._point("b", base.with_cores(8), graph),
        ])
        calls = []
        real = runner_mod.evaluate_point
        monkeypatch.setattr(runner_mod, "evaluate_point",
                            lambda p: calls.append(p.label) or real(p))
        result = SweepRunner().run(space)
        assert result.deduped == 1
        assert result.cache_misses == 2
        assert sorted(calls) == ["a", "b"]      # twin never dispatched
        assert result.results[0].summary == result.results[1].summary
        assert len(result) == 3                 # order and size preserved

    def test_dedup_disabled_on_reference_path(self, monkeypatch):
        base = functional_testbed()
        graph = mlp()
        space = SweepSpace([self._point("a", base, graph),
                            self._point("twin", base, graph)])
        calls = []
        real = runner_mod.evaluate_point
        monkeypatch.setattr(runner_mod, "evaluate_point",
                            lambda p: calls.append(p.label) or real(p))
        with fastpath(False):
            result = SweepRunner().run(space)
        assert result.deduped == 0 and len(calls) == 2

    def test_pool_persists_until_new_graph(self):
        base = functional_testbed()
        with SweepRunner(workers=2) as runner:
            series = level_series(["CG"])
            space1 = SweepSpace.from_arch_points(
                [("c8", base.with_cores(8)), ("c16", base.with_cores(16))],
                mlp(), series=series)
            runner.run(space1)
            pool = runner._pool
            assert pool is not None
            space2 = SweepSpace.from_arch_points(
                [("c32", base.with_cores(32)),
                 ("c64", base.with_cores(64))], mlp(), series=series)
            runner.run(space2)
            assert runner._pool is pool         # same graph: reused
            space3 = SweepSpace.from_arch_points(
                [("c8", base.with_cores(8)), ("c16", base.with_cores(16))],
                lenet(), series=series)
            runner.run(space3)
            assert runner._pool is not pool     # new graph: recreated
        assert runner._pool is None             # context exit closed it

    def test_parallel_pool_matches_serial(self):
        base = functional_testbed()
        series = level_series(["baseline", "CG"])
        def space():
            return SweepSpace.from_arch_points(
                [("c8", base.with_cores(8)), ("c16", base.with_cores(16))],
                mlp(), series=series)
        serial = SweepRunner(workers=1).run(space())
        with SweepRunner(workers=2) as runner:
            parallel = runner.run(space())
        assert [r.summary for r in serial] == [r.summary for r in parallel]

    def test_reference_path_matches_fast_path(self):
        base = functional_testbed()
        series = level_series(["baseline", "CG"])
        def space():
            return SweepSpace.from_arch_points(
                [("c8", base.with_cores(8))], mlp(), series=series)
        with fastpath(False):
            ref = SweepRunner().run(space())
        with fastpath(True):
            fast = SweepRunner().run(space())
        assert [r.summary for r in ref] == [r.summary for r in fast]


class TestGraphSignature:
    def test_cached_and_invalidated(self):
        g = mlp()
        sig = g.signature()
        assert g.signature() == sig             # cached, stable
        assert mlp().signature() == sig         # content-addressed
        from repro.graph import TensorSpec
        g.add_tensor(TensorSpec("extra", (1, 4), 8))
        assert g.signature() != sig             # mutation invalidates

    def test_annotations_do_not_change_identity(self):
        g = lenet()
        sig = g.signature()
        CIMMLC(isaac_baseline()).compile(g)     # writes annotations
        assert g.signature() == sig

    def test_node_lookup_indexed(self):
        g = mlp()
        name = g.nodes[0].name
        assert g.node(name) is g.nodes[0]
        from repro.errors import GraphError
        with pytest.raises(GraphError):
            g.node("no-such-node")


class TestDiskCompileCache:
    def _compile(self, cache):
        return CIMMLC(functional_testbed(), cache=cache).compile(mlp())

    def test_second_instance_is_fully_warm(self, tmp_path):
        cold = DiskCompileCache(str(tmp_path))
        ref = self._compile(cold)
        assert cold.disk_writes > 0 and cold.profile_misses >= 1
        warm = DiskCompileCache(str(tmp_path))     # a "new process"
        res = self._compile(warm)
        assert warm.profile_misses == 0
        assert warm.dup_misses == 0
        assert warm.segment_misses == 0
        assert warm.disk_hits > 0
        assert _report_fields(ref.report) == _report_fields(res.report)

    def test_corrupted_entries_degrade_to_clean_recompile(self, tmp_path):
        cold = DiskCompileCache(str(tmp_path))
        ref = self._compile(cold)
        for i, name in enumerate(sorted(cold._files())):
            path = os.path.join(cold.root, name)
            if i % 2 == 0:
                with open(path, "wb") as fh:     # garbage pickle
                    fh.write(b"\x80\x05not a pickle")
            else:                                # truncated pickle
                data = open(path, "rb").read()
                with open(path, "wb") as fh:
                    fh.write(data[:max(1, len(data) // 2)])
        hurt = DiskCompileCache(str(tmp_path))
        res = self._compile(hurt)
        assert hurt.disk_hits == 0               # every read degraded
        assert hurt.profile_misses >= 1          # ...to a fresh compute
        assert _report_fields(ref.report) == _report_fields(res.report)
        healed = DiskCompileCache(str(tmp_path))  # rewritten entries
        self._compile(healed)
        assert healed.profile_misses == 0 and healed.disk_hits > 0

    def test_schema_bump_orphans_old_entries(self, tmp_path, monkeypatch):
        old = DiskCompileCache(str(tmp_path))
        self._compile(old)
        old_files = old._files()
        assert old_files
        monkeypatch.setattr(diskcache_mod, "SCHEMA_VERSION",
                            diskcache_mod.SCHEMA_VERSION + 1)
        bumped = DiskCompileCache(str(tmp_path))
        assert bumped.root != old.root
        self._compile(bumped)
        assert bumped.disk_hits == 0             # nothing carried over
        assert bumped.profile_misses >= 1
        assert old._files() == old_files         # old version untouched

    def test_concurrent_processes_bit_identical(self, tmp_path):
        src = os.path.dirname(os.path.dirname(os.path.abspath(
            repro.__file__)))
        child = (
            "import hashlib, json, sys\n"
            "from repro.arch import functional_testbed\n"
            "from repro.models import lenet\n"
            "from repro.perf import default_compile_cache\n"
            "from repro.sched import CIMMLC\n"
            "cache = default_compile_cache()\n"
            "result = CIMMLC(functional_testbed(), cache=cache)"
            ".compile(lenet())\n"
            "digest = hashlib.sha256(repr((result.report.total_cycles,"
            " result.report.op_latency, result.report.power))"
            ".encode()).hexdigest()\n"
            "json.dump({'digest': digest, 'stats': cache.stats()},"
            " sys.stdout)\n")
        env = dict(os.environ,
                   REPRO_DISK_CACHE="1",
                   REPRO_COMPILE_CACHE_DIR=str(tmp_path),
                   PYTHONPATH=os.pathsep.join(
                       [src, os.environ.get("PYTHONPATH", "")]))
        procs = [subprocess.Popen([sys.executable, "-c", child], env=env,
                                  stdout=subprocess.PIPE, text=True)
                 for _ in range(2)]
        outs = []
        for proc in procs:
            stdout, _ = proc.communicate(timeout=120)
            assert proc.returncode == 0
            outs.append(json.loads(stdout))
        assert outs[0]["digest"] == outs[1]["digest"]
        warm = DiskCompileCache(str(tmp_path))
        CIMMLC(functional_testbed(), cache=warm).compile(lenet())
        assert warm.profile_misses == 0          # racers populated it
        assert warm.dup_misses == 0 and warm.segment_misses == 0

    def test_default_cache_honours_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_DISK_CACHE", raising=False)
        assert not disk_cache_enabled()
        assert type(default_compile_cache()) is CompileCache
        monkeypatch.setenv("REPRO_DISK_CACHE", "1")
        monkeypatch.setenv("REPRO_COMPILE_CACHE_DIR", str(tmp_path))
        cache = default_compile_cache()
        assert isinstance(cache, DiskCompileCache)
        assert cache.root.startswith(str(tmp_path))

    def test_clear_removes_disk_entries(self, tmp_path):
        cache = DiskCompileCache(str(tmp_path))
        self._compile(cache)
        assert sum(cache.entries().values()) > 0
        cache.clear()
        assert sum(cache.entries().values()) == 0
        assert cache.size_bytes() == 0


class TestIncrementalCompiler:
    def test_one_axis_family_single_full_compile(self):
        graph = mlp()
        arch = functional_testbed()
        inc = IncrementalCompiler()
        with fastpath(True):
            results = {c: inc.compile(graph, arch.with_cores(c))
                       for c in (16, 24, 32)}
        assert inc.full_compiles == 1            # only the first point
        assert inc.delta_compiles == 2           # the rest delta-patch
        for cores, res in results.items():
            scratch = CIMMLC(arch.with_cores(cores)).compile(mlp())
            assert _report_fields(res.report) == \
                _report_fields(scratch.report)

    def test_exact_repeat_returns_stored_result(self):
        graph = mlp()
        arch = functional_testbed()
        with fastpath(True):
            inc = IncrementalCompiler()
            first = inc.compile(graph, arch)
            again = inc.compile(graph, arch)
        assert again is first and inc.exact_hits == 1

    def test_equal_graph_copies_get_distinct_schedules(self):
        # Two tenants holding equal-signature copies must not share (and
        # cross-annotate) one schedule; the replay must splice instead.
        with fastpath(True):
            inc = IncrementalCompiler()
            a = inc.compile(mlp(), functional_testbed())
            searched = inc.searched_segments
            b = inc.compile(mlp(), functional_testbed())
        assert a.schedule is not b.schedule
        assert inc.delta_compiles == 1
        assert inc.searched_segments == searched  # no re-search
        assert inc.spliced_segments >= 1
        assert _report_fields(a.report) == _report_fields(b.report)

    def test_reference_path_defers_to_plain_compile(self):
        with fastpath(False):
            inc = IncrementalCompiler()
            res = inc.compile(mlp(), functional_testbed())
        assert inc.full_compiles == 0 and inc.delta_compiles == 0
        ref = CIMMLC(functional_testbed()).compile(mlp())
        assert _report_fields(res.report) == _report_fields(ref.report)

    def test_stats_include_cache_counters(self):
        with fastpath(True):
            inc = IncrementalCompiler(cache=CompileCache())
            inc.compile(mlp(), functional_testbed())
        stats = inc.stats()
        assert stats["full_compiles"] == 1
        assert stats["cache_profiles_stored"] >= 1
        inc.clear()
        assert inc.stats()["full_compiles"] == 0
