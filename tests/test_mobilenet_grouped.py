"""MobileNet / grouped convolutions across the whole stack."""

import numpy as np
import pytest

from repro.arch import ComputingMode, functional_testbed, isaac_baseline
from repro.graph import GraphBuilder
from repro.graph.transforms import expand_grouped_convs
from repro.models import mobilenet_tiny, mobilenet_v1
from repro.quant import random_input, random_weights
from repro.sched import CIMMLC, no_optimization
from repro.sched.lowering import lower_to_flow
from repro.sim.functional import CIMMachine
from repro.sim.reference import ReferenceExecutor


class TestModel:
    def test_mobilenet_v1_structure(self):
        g = mobilenet_v1()
        depthwise = [n for n in g.nodes
                     if n.op_type == "Conv" and n.attr("groups", 1) > 1]
        assert len(depthwise) == 13
        params = g.total_weight_bits() // 8
        assert 3.5e6 < params < 5e6      # ~4.2M known figure

    def test_depthwise_weight_matrix_is_tiny(self):
        g = mobilenet_v1()
        dw = next(n for n in g.nodes if n.attr("groups", 1) > 1)
        rows, cols, _ = g.weight_matrix(dw)
        assert rows == 9                 # 1 channel x 3x3 kernel
        assert cols == dw.attr("groups")

    def test_width_multiplier(self):
        full = mobilenet_v1().total_weight_bits()
        half = mobilenet_v1(width=0.5).total_weight_bits()
        assert half < full


class TestReferenceGroupedConv:
    def test_depthwise_matches_per_channel(self):
        b = GraphBuilder("g")
        x = b.input("x", (1, 3, 5, 5))
        y = b.conv(x, 3, kernel=3, padding=1, groups=3, name="dw")
        g = b.build([y])
        rng = np.random.default_rng(0)
        w = {"dw_w": rng.integers(-3, 4, size=(3, 1, 3, 3))}
        data = rng.integers(-4, 5, size=(1, 3, 5, 5))
        out = ReferenceExecutor(g, w).run({"x": data})[g.outputs[0]]
        # Each output channel depends only on its own input channel.
        for c in range(3):
            gc = GraphBuilder(f"single{c}")
            xc = gc.input("x", (1, 1, 5, 5))
            yc = gc.conv(xc, 1, kernel=3, padding=1, name="c")
            gg = gc.build([yc])
            ref = ReferenceExecutor(
                gg, {"c_w": w["dw_w"][c:c + 1]},
            ).run({"x": data[:, c:c + 1]})[gg.outputs[0]]
            assert np.array_equal(out[:, c:c + 1], ref)

    def test_bad_group_config_rejected(self):
        from repro.errors import ShapeError

        b = GraphBuilder("g")
        x = b.input("x", (1, 4, 5, 5))
        with pytest.raises(ShapeError):
            y = b.conv(x, 6, kernel=3, groups=4, name="bad")
            b.build([y])


class TestExpansionTransform:
    def test_expansion_preserves_semantics(self):
        g = mobilenet_tiny()
        weights = random_weights(g, seed=2, low=-3, high=3)
        inputs = random_input(g, seed=5)
        expanded, split_weights = expand_grouped_convs(g, weights)
        assert all(n.attr("groups", 1) == 1 for n in expanded.nodes
                   if n.op_type == "Conv")
        original = ReferenceExecutor(g, weights).run(inputs)
        rewritten = ReferenceExecutor(expanded, split_weights).run(inputs)
        out = g.outputs[0]
        assert np.array_equal(original[out], rewritten[out])

    def test_expansion_without_weights(self):
        g = mobilenet_tiny()
        expanded, none_weights = expand_grouped_convs(g)
        assert none_weights is None
        expanded.validate()


class TestEndToEnd:
    def test_mobilenet_compiles_on_baseline(self):
        arch = isaac_baseline()
        g = mobilenet_v1()
        base = no_optimization(g, arch)
        ours = CIMMLC(arch).compile(g)
        assert ours.total_cycles < base.total_cycles

    @pytest.mark.parametrize("mode",
                             [ComputingMode.XBM, ComputingMode.WLM],
                             ids=lambda m: m.value)
    def test_mobilenet_tiny_functional_exact(self, mode):
        g = mobilenet_tiny()
        weights = random_weights(g, seed=2, low=-2, high=2)
        inputs = random_input(g, seed=5)
        expanded, split_weights = expand_grouped_convs(g, weights)
        arch = functional_testbed(mode)
        program = lower_to_flow(CIMMLC(arch).schedule(expanded),
                                split_weights)
        machine = CIMMachine(arch)
        machine.run(program, inputs)
        reference = ReferenceExecutor(g, weights).run(inputs)
        out = g.outputs[0]
        got = machine.read_tensor(program, out, reference[out].shape)
        assert np.array_equal(got, reference[out].astype(np.float64))
