"""CIMMachine: per-meta-operator semantics at the unit level."""

import numpy as np
import pytest

from repro.arch import ComputingMode, table2_example
from repro.errors import SimulationError
from repro.mops import (
    DigitalOp,
    MetaOperatorFlow,
    Mov,
    ReadRow,
    ReadXb,
    WriteRow,
    WriteXb,
)
from repro.quant import encode_matrix
from repro.sim.functional import CIMMachine, FlowProgram
from repro.sim.memory import BufferSpace, BumpAllocator, MachineMemory


def machine(mode=ComputingMode.XBM):
    return CIMMachine(table2_example(mode), l0_size=1 << 16)


def run_ops(m, ops, constants=None, inputs=None, offsets=None):
    flow = MetaOperatorFlow("t", ops)
    for name, value in (constants or {}).items():
        flow.add_constant(name, value)
    program = FlowProgram(flow, offsets or {"in": 0})
    m.run(program, inputs or {})
    return program


class TestBuffers:
    def test_out_of_range_read(self):
        buf = BufferSpace("b", 8)
        with pytest.raises(SimulationError):
            buf.read(6, 4)

    def test_accumulate(self):
        buf = BufferSpace("b", 4)
        buf.write(0, np.ones(4))
        buf.accumulate(0, np.ones(4))
        assert np.array_equal(buf.read(0, 4), 2 * np.ones(4))

    def test_bump_allocator_exhaustion(self):
        alloc = BumpAllocator(10)
        alloc.alloc(8)
        with pytest.raises(Exception):
            alloc.alloc(4, "too-big")

    def test_memory_layout_disjoint(self):
        mem = MachineMemory(table2_example(), l0_size=16)
        regions = []
        for xb in range(4):
            regions.append((mem.stage_addr(xb), mem.arch.xb.rows))
            regions.append((mem.acc_addr(xb), mem.arch.xb.cols))
            regions.append((mem.scratch_addr(xb), mem.arch.xb.cols))
        regions.sort()
        for (a_start, a_len), (b_start, _) in zip(regions, regions[1:]):
            assert a_start + a_len <= b_start


class TestCrossbarOps:
    def test_mov_l0_to_l1(self):
        m = machine()
        run_ops(m, [Mov(0, m.mem.stage_addr(0), 4)],
                inputs={"in": np.array([1, 2, 3, 4])})
        assert np.array_equal(
            m.mem.l1.read(m.mem.stage_addr(0), 4), [1, 2, 3, 4])

    def test_readxb_computes_mvm(self):
        m = machine()
        cells = np.zeros((32, 128))
        cells[:3, :2] = [[1, 2], [3, 4], [5, 6]]
        ops = [
            Mov(0, m.mem.stage_addr(0), 3),
            WriteXb(0, "W"),
            ReadXb(0),
        ]
        run_ops(m, ops, constants={"W": cells},
                inputs={"in": np.array([1, 1, 1])})
        acc = m.mem.l1.read(m.mem.acc_addr(0), 2)
        assert np.array_equal(acc, [9, 12])

    def test_readxb_accumulates_across_activations(self):
        m = machine()
        cells = np.ones((32, 128))
        ops = [Mov(0, m.mem.stage_addr(0), 2), WriteXb(0, "W"),
               ReadXb(0), ReadXb(0)]
        run_ops(m, ops, constants={"W": cells},
                inputs={"in": np.array([1, 1])})
        assert m.mem.l1.read(m.mem.acc_addr(0), 1)[0] == 4

    def test_readrow_partial_activation(self):
        m = machine(ComputingMode.WLM)
        cells = np.ones((8, 4))
        ops = [
            Mov(0, m.mem.stage_addr(0), 8),
            WriteRow(0, 0, 8, "W"),
            ReadRow(0, 0, 4),       # only first 4 rows contribute
        ]
        run_ops(m, ops, constants={"W": cells},
                inputs={"in": np.arange(8)})
        assert m.mem.l1.read(m.mem.acc_addr(0), 1)[0] == 0 + 1 + 2 + 3

    def test_writerow_length_mismatch_rejected(self):
        m = machine(ComputingMode.WLM)
        with pytest.raises(SimulationError, match="payload"):
            run_ops(m, [WriteRow(0, 0, 4, "W")],
                    constants={"W": np.ones((2, 2))})

    def test_stats_counted(self):
        m = machine()
        run_ops(m, [Mov(0, m.mem.stage_addr(0), 1), WriteXb(0, "W"),
                    ReadXb(0)],
                constants={"W": np.zeros((32, 128))},
                inputs={"in": np.zeros(1)})
        assert m.stats["cim_activations"] == 1
        assert m.stats["movs"] == 1


class TestDigitalOps:
    def test_relu(self):
        m = machine()
        run_ops(m, [DigitalOp("relu", (0,), 8, 4)],
                inputs={"in": np.array([-1, 2, -3, 4])})
        assert np.array_equal(m.mem.l0.read(8, 4), [0, 2, 0, 4])

    def test_add(self):
        m = machine()
        prog_inputs = {"a": np.array([1, 2]), "b": np.array([10, 20])}
        flow = MetaOperatorFlow("t", [DigitalOp("add", (0, 2), 4, 2)])
        program = FlowProgram(flow, {"a": 0, "b": 2})
        m.run(program, prog_inputs)
        assert np.array_equal(m.mem.l0.read(4, 2), [11, 22])

    def test_shiftadd_with_offset_correction(self):
        m = machine()
        matrix = np.array([[-3, 7], [5, -2]])
        cells = encode_matrix(matrix, bits=8, cell_bits=2)
        x = np.array([2, 3])
        ops = [
            Mov(0, m.mem.stage_addr(0), 2),
            WriteXb(0, "W"),
            ReadXb(0),
            DigitalOp("shiftadd", (m.mem.acc_addr(0),),
                      m.mem.scratch_addr(0), 2,
                      params=(("space", "L1"), ("slices", 4),
                              ("cell_bits", 2), ("offset", 128),
                              ("stage", m.mem.stage_addr(0)),
                              ("stage_len", 2))),
        ]
        run_ops(m, ops, constants={"W": cells}, inputs={"in": x})
        got = m.mem.l1.read(m.mem.scratch_addr(0), 2)
        assert np.array_equal(got, x @ matrix)

    def test_unknown_dcom_rejected(self):
        m = machine()
        with pytest.raises(SimulationError, match="unknown DCOM"):
            run_ops(m, [DigitalOp("teleport", (0,), 4, 1)],
                    inputs={"in": np.zeros(1)})

    def test_maxpool_params(self):
        m = machine()
        x = np.arange(16).reshape(1, 1, 4, 4)
        run_ops(m, [DigitalOp("maxpool", (0,), 16, 4,
                              params=(("in_shape", (1, 1, 4, 4)),
                                      ("kernel", 2), ("stride", 2)))],
                inputs={"in": x})
        assert np.array_equal(m.mem.l0.read(16, 4), [5, 7, 13, 15])

    def test_readcore_without_image_rejected(self):
        from repro.mops import ReadCore

        m = machine(ComputingMode.CM)
        with pytest.raises(SimulationError, match="no flashed operator"):
            run_ops(m, [ReadCore("conv", 0, 0, 0)],
                    inputs={"in": np.zeros(1)})
