"""Virtual crossbars: dimension binding math (Fig. 7)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.arch import BitBinding, CrossbarTier, bind, cores_per_vxb, vxbs_per_core
from repro.errors import ArchitectureError


def xb128(cell_bits=2):
    return CrossbarTier(xb_size=(128, 128), cell_bits=cell_bits)


class TestBinding:
    def test_small_matrix_single_crossbar(self):
        shape = bind((27, 32, 8), CrossbarTier(xb_size=(32, 128), cell_bits=2))
        assert (shape.v_rows, shape.v_cols) == (1, 1)
        assert shape.num_crossbars == 1
        assert shape.rows_used == 27
        assert shape.cols_used == 32 * 4   # 4 slices of 2-bit cells

    def test_vgg_conv_tile_counts(self):
        # 4608x512 8-bit weights on 128x128 2-bit crossbars:
        # 36 vertical tiles, 512*4/128 = 16 horizontal tiles.
        shape = bind((4608, 512, 8), xb128())
        assert shape.v_rows == 36
        assert shape.v_cols == 16
        assert shape.num_crossbars == 576

    def test_bit_to_xb_binding(self):
        shape = bind((100, 100, 8), xb128(), BitBinding.XB)
        assert shape.slices_per_xb == 4
        assert shape.v_cols == 1
        assert shape.num_crossbars == 4

    def test_rows_used_in_tiles(self):
        xb = xb128()
        shape = bind((200, 64, 8), xb)
        assert shape.rows_used_in(0, xb) == 128   # full tile
        assert shape.rows_used_in(1, xb) == 72    # partial tile
        with pytest.raises(ArchitectureError):
            shape.rows_used_in(2, xb)

    def test_degenerate_matrix_rejected(self):
        with pytest.raises(ArchitectureError):
            bind((0, 4, 8), xb128())


@given(r=st.integers(1, 4096), c=st.integers(1, 4096),
       bits=st.integers(1, 16),
       xb_rows=st.integers(8, 512), xb_cols=st.integers(8, 512),
       cell_bits=st.integers(1, 4))
def test_binding_covers_matrix(r, c, bits, xb_rows, xb_cols, cell_bits):
    """Invariant: the bound crossbar grid always covers the whole matrix,
    and removing one tile row/column would not."""
    xb = CrossbarTier(xb_size=(xb_rows, xb_cols), cell_bits=cell_bits)
    shape = bind((r, c, bits), xb)
    slices = xb.bit_slices(bits)
    assert shape.v_rows * xb_rows >= r
    assert (shape.v_rows - 1) * xb_rows < r
    assert shape.v_cols * xb_cols >= c * slices
    assert (shape.v_cols - 1) * xb_cols < c * slices
    assert 1 <= shape.rows_used <= xb_rows
    assert 1 <= shape.cols_used <= xb_cols
    # Total cell capacity of the VXB is at least the weight volume.
    assert shape.num_crossbars * xb.capacity_bits >= r * c * bits


@given(r=st.integers(1, 512), c=st.integers(1, 512),
       xb_number=st.integers(1, 32))
def test_core_packing_consistent(r, c, xb_number):
    xb = xb128()
    shape = bind((r, c, 8), xb)
    per_core = vxbs_per_core(shape, xb_number)
    cores = cores_per_vxb(shape, xb_number)
    if per_core >= 1:
        assert cores == 1
        assert per_core * shape.num_crossbars <= xb_number
    else:
        assert cores >= 2
        assert cores * xb_number >= shape.num_crossbars
