"""End-to-end integration: every preset x workload compiles and the paper's
qualitative results hold."""

import pytest

from repro.arch import (
    PRESETS,
    isaac_baseline,
    jain2021,
    jia2021,
    puma,
)
from repro.models import resnet18, tiny_conv, vgg7, vit_tiny
from repro.sched import CIMMLC, CompilerOptions, no_optimization


class TestEveryPreset:
    @pytest.mark.parametrize("preset", sorted(PRESETS))
    def test_compiles_tiny_conv(self, preset):
        arch = PRESETS[preset]()
        result = CIMMLC(arch).compile(tiny_conv())
        assert result.total_cycles > 0
        result.schedule.validate_resources()

    @pytest.mark.parametrize("preset", ["isaac-baseline", "puma",
                                        "jia2021", "jain2021"])
    def test_optimization_helps_or_neutral(self, preset):
        arch = PRESETS[preset]()
        graph = vgg7()
        base = no_optimization(graph, arch)
        ours = CIMMLC(arch).compile(graph)
        assert ours.total_cycles <= base.total_cycles


class TestPaperHeadlines:
    """The abstract's quantitative claims, in shape."""

    def test_resnet18_pipeline_speedup_near_paper(self):
        """Paper Fig. 21(a): CG pipeline alone gives 2.3x on ResNet18."""
        arch = isaac_baseline()
        graph = resnet18()
        base = no_optimization(graph, arch)
        pipe = CIMMLC(arch, CompilerOptions(
            max_level="CG", duplicate=False)).compile(graph)
        speedup = base.total_cycles / pipe.total_cycles
        assert 1.8 < speedup < 3.0

    def test_resnet18_duplication_speedup_large(self):
        """Paper Fig. 21(a): duplication gives 25.4x on ResNet18."""
        arch = isaac_baseline()
        graph = resnet18()
        base = no_optimization(graph, arch)
        dup = CIMMLC(arch, CompilerOptions(
            max_level="CG", pipeline=False)).compile(graph)
        assert base.total_cycles / dup.total_cycles > 10

    def test_headline_speedup_over_poly(self):
        """Abstract: 3.2x average speedup over prior CIM compilation."""
        from repro.sched import poly_schedule

        arch = isaac_baseline()
        graph = resnet18()
        poly = poly_schedule(graph, arch)
        ours = CIMMLC(arch).compile(graph)
        assert poly.total_cycles / ours.total_cycles > 2.0

    def test_mvm_pipeline_cuts_puma_peak_power(self):
        """Abstract: 75% peak-power reduction for PUMA."""
        from repro.sched import puma_schedule

        arch = puma()
        graph = vgg7()
        base = puma_schedule(graph, arch)
        ours = CIMMLC(arch).compile(graph)
        assert ours.peak_power < 0.5 * base.peak_power

    def test_wlm_stack_beats_vendor_on_jain(self):
        """Abstract: 2.3x on Jain et al.'s macro — we assert the win."""
        arch = jain2021()
        graph = vgg7()
        vendor = no_optimization(graph, arch)
        ours = CIMMLC(arch).compile(graph)
        assert ours.total_cycles < vendor.total_cycles

    def test_cm_stack_beats_vendor_on_jia(self):
        """Abstract: 3.7x on Jia et al.'s accelerator — we assert the win."""
        arch = jia2021()
        graph = vgg7()
        vendor = no_optimization(graph, arch)
        ours = CIMMLC(arch).compile(graph)
        assert ours.total_cycles < vendor.total_cycles


class TestModeGeneralityMatrix:
    """One compiler, three interface granularities, one workload."""

    @pytest.mark.parametrize("arch_factory,levels", [
        (jia2021, ("CG",)),
        (puma, ("CG", "MVM")),
        (jain2021, ("CG", "MVM", "VVM")),
    ])
    def test_levels_match_interface(self, arch_factory, levels):
        result = CIMMLC(arch_factory()).compile(vit_tiny())
        assert tuple(result.schedule.levels) == levels
