"""Serving simulator: traces, partitioning, engine, reports, sweep bridge."""

import json

import pytest

from repro.arch import functional_testbed, isaac_flash
from repro.errors import CapacityError, ScheduleError
from repro.explore import SweepRunner
from repro.models import get_model
from repro.serve import (
    FixedBatch,
    ServiceProfile,
    ServingEngine,
    ServingPlan,
    TenantPlan,
    TenantSpec,
    TimeoutBatch,
    build_plans,
    bursty_trace,
    capacity_table,
    diurnal_trace,
    make_plan,
    make_trace,
    min_cores,
    parse_policy,
    partition_cores,
    percentile,
    plan_spatial,
    plan_temporal,
    poisson_trace,
    serve_sweep,
    simulate,
    tenant_counts,
)
from repro.serve.workload import Request

SMALL_TENANTS = [TenantSpec("lenet", "lenet", weight=2.0),
                 TenantSpec("mlp", "mlp", weight=1.0)]


def synthetic_plan(mode="spatial", latency=100.0, interval=10.0,
                   switch=5.0, tenants=("a",)):
    """A hand-built plan with round service numbers for exact-value tests."""
    plans = tuple(
        TenantPlan(spec=TenantSpec(name, "mlp"),
                   cores=tuple(range(i * 4, i * 4 + 4)),
                   service=ServiceProfile(latency_cycles=latency,
                                          interval_cycles=interval,
                                          switch_cycles=switch))
        for i, name in enumerate(tenants)
    )
    return ServingPlan(mode=mode, arch_name="synthetic", tenants=plans)


def requests(tenant, *arrivals, start_index=0):
    return [Request(start_index + i, tenant, t)
            for i, t in enumerate(arrivals)]


# ---------------------------------------------------------------------------
# Traces
# ---------------------------------------------------------------------------


class TestTraces:
    @pytest.mark.parametrize("kind", ["poisson", "bursty", "diurnal"])
    def test_deterministic_and_ordered(self, kind):
        a = make_trace(kind, SMALL_TENANTS, rate=1e-4, num_requests=200,
                       seed=7)
        b = make_trace(kind, SMALL_TENANTS, rate=1e-4, num_requests=200,
                       seed=7)
        assert a == b
        assert [r.arrival for r in a] == sorted(r.arrival for r in a)
        assert [r.index for r in a] == list(range(200))

    def test_seed_changes_trace(self):
        a = poisson_trace(SMALL_TENANTS, 1e-4, 50, seed=0)
        b = poisson_trace(SMALL_TENANTS, 1e-4, 50, seed=1)
        assert a != b

    def test_weights_shape_mix(self):
        trace = poisson_trace(SMALL_TENANTS, 1e-4, 3000, seed=0)
        counts = tenant_counts(trace)
        assert counts["lenet"] + counts["mlp"] == 3000
        # 2:1 weights: lenet should take roughly two thirds.
        assert 0.6 < counts["lenet"] / 3000 < 0.73

    def test_mean_rate_roughly_preserved(self):
        rate = 1e-4
        for gen in (poisson_trace, bursty_trace, diurnal_trace):
            trace = gen(SMALL_TENANTS, rate, 2000, seed=3)
            span = trace[-1].arrival
            assert 0.5 < (2000 / span) / rate < 2.0, gen.__name__

    def test_validation(self):
        with pytest.raises(ScheduleError):
            poisson_trace([], 1e-4, 10)
        with pytest.raises(ScheduleError):
            poisson_trace(SMALL_TENANTS, 0.0, 10)
        with pytest.raises(ScheduleError):
            poisson_trace([TenantSpec("x", "mlp"), TenantSpec("x", "mlp")],
                          1e-4, 10)
        with pytest.raises(ScheduleError):
            make_trace("fractal", SMALL_TENANTS, 1e-4, 10)
        with pytest.raises(ScheduleError):
            TenantSpec("x", "mlp", weight=0.0)


# ---------------------------------------------------------------------------
# Batching policies
# ---------------------------------------------------------------------------


class TestPolicies:
    def test_parse(self):
        assert parse_policy("fixed:4") == FixedBatch(4)
        assert parse_policy("timeout:8:50000") == TimeoutBatch(8, 50000.0)
        for bad in ("fixed", "fixed:x", "timeout:8", "drop:1", "fixed:0"):
            with pytest.raises(ScheduleError):
                parse_policy(bad)

    def test_fixed_batch_exact_timings(self):
        # Requests at 0,1,2,3; batches of 2; latency 100, interval 10,
        # switch 5 (paid once, first load).  Batch 1 dispatches when the
        # second request lands (t=1): done 1+5+110=116.  Batch 2 starts
        # at completion: done 116+110=226.
        plan = synthetic_plan(tenants=("a",))
        trace = requests("a", 0.0, 1.0, 2.0, 3.0)
        report = ServingEngine(plan, FixedBatch(2)).run(trace)
        lats = report.tenants[0].latencies
        assert lats == (116.0, 115.0, 224.0, 223.0)
        assert report.horizon_cycles == 226.0
        assert report.tenants[0].batches == 2
        assert report.tenants[0].mean_batch == 2.0

    def test_fixed_batch_flushes_tail(self):
        # 3 requests, batch size 4: the trace ends, so the engine must
        # flush the partial batch instead of deadlocking.
        plan = synthetic_plan(tenants=("a",))
        report = ServingEngine(plan, FixedBatch(4)).run(
            requests("a", 0.0, 1.0, 2.0))
        assert report.completed == 3
        assert report.tenants[0].batches == 1

    def test_timeout_batch_fires_timer(self):
        # Arrivals at 0 and 500; timeout 50 dispatches the first request
        # alone at t=50 (done 50+5+100=155); the second flushes on
        # arrival (no more pending): done max(500, 155)+100=600.
        plan = synthetic_plan(tenants=("a",))
        report = ServingEngine(plan, TimeoutBatch(4, 50.0)).run(
            requests("a", 0.0, 500.0))
        assert report.tenants[0].latencies == (155.0, 100.0)

    def test_timeout_batch_caps_size(self):
        plan = synthetic_plan(tenants=("a",))
        report = ServingEngine(plan, TimeoutBatch(2, 1e9)).run(
            requests("a", 0.0, 1.0, 2.0, 3.0))
        assert report.tenants[0].batches == 2
        assert report.tenants[0].mean_batch == 2.0


# ---------------------------------------------------------------------------
# Engine semantics
# ---------------------------------------------------------------------------


class TestEngine:
    def test_empty_trace(self):
        plan = synthetic_plan()
        report = ServingEngine(plan, FixedBatch(1)).run([])
        assert report.completed == 0
        assert report.horizon_cycles == 0.0
        assert report.p99 == 0.0
        assert report.slo_attainment == 1.0
        assert report.utilization == 0.0

    def test_single_tenant_temporal_pays_switch_once(self):
        plan = synthetic_plan(mode="temporal", tenants=("a",))
        report = ServingEngine(plan, FixedBatch(1)).run(
            requests("a", 0.0, 1000.0))
        # Only the initial weight load; the tenant stays resident.
        assert report.switch_cycles == 5.0
        assert report.executors[0].switches == 1

    def test_temporal_alternation_pays_switch_every_time(self):
        plan = synthetic_plan(mode="temporal", tenants=("a", "b"))
        trace = (requests("a", 0.0) + requests("b", 1.0, start_index=1)
                 + requests("a", 2.0, start_index=2))
        report = ServingEngine(plan, FixedBatch(1)).run(trace)
        assert report.executors[0].switches == 3
        assert report.switch_cycles == 15.0

    def test_spatial_regions_run_concurrently(self):
        plan = synthetic_plan(mode="spatial", tenants=("a", "b"), switch=0.0)
        trace = requests("a", 0.0) + requests("b", 0.0, start_index=1)
        report = ServingEngine(plan, FixedBatch(1)).run(trace)
        # Both served in parallel: horizon is one latency, not two.
        assert report.horizon_cycles == 100.0
        assert len(report.executors) == 2

    def test_temporal_serializes_tenants(self):
        plan = synthetic_plan(mode="temporal", tenants=("a", "b"), switch=0.0)
        trace = requests("a", 0.0) + requests("b", 0.0, start_index=1)
        report = ServingEngine(plan, FixedBatch(1)).run(trace)
        assert report.horizon_cycles == 200.0
        assert len(report.executors) == 1

    def test_queue_saturation_rejects(self):
        plan = synthetic_plan(latency=1000.0, interval=1000.0, switch=0.0)
        trace = requests("a", *[float(i) for i in range(40)])
        report = ServingEngine(plan, FixedBatch(1), max_queue=4).run(trace)
        t = report.tenants[0]
        assert t.rejected > 0
        assert t.completed + t.rejected == 40
        assert t.slo_attainment < 1.0   # rejected requests violate the SLO
        assert report.rejected == t.rejected

    def test_unknown_tenant_rejected(self):
        plan = synthetic_plan(tenants=("a",))
        with pytest.raises(ScheduleError):
            ServingEngine(plan, FixedBatch(1)).run(requests("ghost", 0.0))

    def test_percentile_nearest_rank(self):
        lats = [float(x) for x in range(1, 101)]
        assert percentile(lats, 50) == 50.0
        assert percentile(lats, 99) == 99.0
        assert percentile(lats, 100) == 100.0
        assert percentile([5.0], 99) == 5.0
        with pytest.raises(ValueError):
            percentile(lats, 0)


# ---------------------------------------------------------------------------
# Partitioning
# ---------------------------------------------------------------------------


class TestPartition:
    def test_water_filling_respects_floors_and_budget(self):
        arch = functional_testbed()
        floors = {"lenet": 20, "mlp": 3}
        alloc = partition_cores(
            arch, SMALL_TENANTS, floors,
            lambda spec, cores: 1000.0 / cores)
        assert alloc["lenet"] >= 20 and alloc["mlp"] >= 3
        assert sum(alloc.values()) == arch.chip.core_number

    def test_water_filling_grants_to_neediest(self):
        arch = functional_testbed()
        specs = [TenantSpec("hungry", "mlp"), TenantSpec("modest", "mlp")]
        floors = {"hungry": 3, "modest": 3}
        # "hungry" never improves below a huge latency; it should absorb
        # every surplus block.
        alloc = partition_cores(
            arch, specs, floors,
            lambda spec, cores: 1e9 if spec.name == "hungry" else 1.0)
        assert alloc["hungry"] == arch.chip.core_number - 3
        assert alloc["modest"] == 3

    def test_floors_exceed_budget(self):
        arch = functional_testbed().with_cores(10)
        with pytest.raises(CapacityError):
            partition_cores(arch, SMALL_TENANTS, {"lenet": 20, "mlp": 3},
                            lambda spec, cores: 1.0)

    def test_plan_spatial_disjoint_regions(self):
        plan = plan_spatial(functional_testbed(), SMALL_TENANTS)
        all_cores = [c for t in plan.tenants for c in t.cores]
        assert len(all_cores) == len(set(all_cores))
        assert len(all_cores) == functional_testbed().chip.core_number
        for t in plan.tenants:
            assert t.service.switch_cycles == 0.0
            assert t.schedule is not None
            # Region-constrained placement annotated physical cores.
            placed = [
                core
                for node in t.schedule.graph.nodes
                if "cores_placed" in node.annotations
                for core in node.annotations["cores_placed"]
            ]
            assert placed and set(placed) <= set(t.cores)

    def test_plan_spatial_explicit_alloc(self):
        plan = plan_spatial(functional_testbed(), SMALL_TENANTS,
                            alloc={"lenet": 24, "mlp": 8})
        assert len(plan.tenant("lenet").cores) == 24
        with pytest.raises(CapacityError):
            plan_spatial(functional_testbed(), SMALL_TENANTS,
                         alloc={"lenet": 40, "mlp": 8})
        with pytest.raises(CapacityError):
            plan_spatial(functional_testbed(), SMALL_TENANTS,
                         alloc={"lenet": 10, "mlp": 8})

    def test_plan_temporal_charges_weight_load(self):
        plan = plan_temporal(functional_testbed(), SMALL_TENANTS)
        for t in plan.tenants:
            assert t.service.switch_cycles > 0.0
            assert len(t.cores) == functional_testbed().chip.core_number
        assert plan.shared_executor

    def test_make_plan_dispatch(self):
        with pytest.raises(ScheduleError):
            make_plan("quantum", functional_testbed(), SMALL_TENANTS)

    def test_service_profile_batches(self):
        s = ServiceProfile(latency_cycles=100.0, interval_cycles=10.0)
        assert s.batch_cycles(1) == 100.0
        assert s.batch_cycles(4) == 130.0
        assert s.batch_cycles(0) == 0.0

    def test_service_profile_from_summary(self):
        summary = {"total_cycles": 50.0, "steady_state_interval": 5.0,
                   "weight_load_cycles": 7.0}
        assert ServiceProfile.from_summary(summary).switch_cycles == 7.0
        assert ServiceProfile.from_summary(
            summary, switch_cycles=0.0).switch_cycles == 0.0

    def test_min_cores_positive(self):
        assert min_cores(get_model("lenet"), functional_testbed()) == 20


# ---------------------------------------------------------------------------
# Determinism
# ---------------------------------------------------------------------------


class TestDeterminism:
    def test_bit_identical_reports(self):
        arch = functional_testbed()
        trace = make_trace("bursty", SMALL_TENANTS, rate=5e-4,
                           num_requests=300, seed=11)
        dicts = []
        for _ in range(2):
            plan = make_plan("spatial", arch, SMALL_TENANTS)
            report = simulate(plan, trace, policy=TimeoutBatch(4, 2000.0))
            dicts.append(report.to_dict())
        assert dicts[0] == dicts[1]
        assert json.dumps(dicts[0], sort_keys=True) == \
            json.dumps(dicts[1], sort_keys=True)

    def test_temporal_deterministic_too(self):
        arch = functional_testbed()
        trace = poisson_trace(SMALL_TENANTS, rate=5e-4, num_requests=200,
                              seed=4)
        runs = [
            simulate(plan_temporal(arch, SMALL_TENANTS), trace,
                     policy=FixedBatch(3)).to_dict()
            for _ in range(2)
        ]
        assert runs[0] == runs[1]


# ---------------------------------------------------------------------------
# The headline scenario (acceptance criterion)
# ---------------------------------------------------------------------------


class TestHeadline:
    def test_spatial_beats_temporal_p99(self):
        """Partitioned multi-tenant serving beats time-multiplexed
        reconfiguration on p99 for mixed resnet18+mobilenet traffic."""
        arch = isaac_flash()
        tenants = [TenantSpec("resnet18", "resnet18", weight=4.0),
                   TenantSpec("mobilenet", "mobilenet", weight=1.0)]
        trace = poisson_trace(tenants, rate=22e-6, num_requests=400, seed=0)
        policy = TimeoutBatch(max_size=8, timeout=50_000.0)
        spatial = simulate(make_plan("spatial", arch, tenants), trace,
                           policy=policy)
        temporal = simulate(make_plan("temporal", arch, tenants), trace,
                            policy=policy)
        assert spatial.completed == temporal.completed == 400
        assert spatial.p99 < temporal.p99
        assert spatial.slo_attainment > temporal.slo_attainment
        # The baseline pays real reconfiguration; partitioning pays none.
        assert temporal.switch_cycles > 0
        assert spatial.switch_cycles == 0
        # Full metric surface is reported.
        d = spatial.to_dict()
        for key in ("throughput_per_mcycle", "p50", "p95", "p99",
                    "utilization", "slo_attainment"):
            assert d[key] >= 0


# ---------------------------------------------------------------------------
# Explore bridge
# ---------------------------------------------------------------------------


class TestSweepBridge:
    def test_plans_match_live_compiles(self, tmp_path):
        arch = functional_testbed()
        plans = build_plans(arch, SMALL_TENANTS,
                            runner=SweepRunner(cache_dir=str(tmp_path)))
        live_spatial = plan_spatial(arch, SMALL_TENANTS, place=False)
        live_temporal = plan_temporal(arch, SMALL_TENANTS)
        for live, bridged in ((live_spatial, plans["spatial"]),
                              (live_temporal, plans["temporal"])):
            for lt, bt in zip(live.tenants, bridged.tenants):
                assert lt.service == bt.service
                assert lt.cores == bt.cores

    def test_sweep_cached_rerun_identical(self, tmp_path):
        arch = functional_testbed()
        kwargs = dict(rates=[2e-4, 5e-4], num_requests=120, seed=2,
                      policies=[TimeoutBatch(4, 2000.0)])
        cold = serve_sweep(arch, SMALL_TENANTS,
                           runner=SweepRunner(cache_dir=str(tmp_path)),
                           **kwargs)
        warm = serve_sweep(arch, SMALL_TENANTS,
                           runner=SweepRunner(cache_dir=str(tmp_path)),
                           **kwargs)
        assert [p.report.to_dict() for p in cold] == \
            [p.report.to_dict() for p in warm]
        assert len(cold) == 2 * 2  # rates x modes
        table = capacity_table(cold)
        assert "spatial p99" in table and "temporal p99" in table

    def test_unknown_mode_rejected(self):
        with pytest.raises(ScheduleError):
            build_plans(functional_testbed(), SMALL_TENANTS,
                        modes=("spatial", "warp"))


# ---------------------------------------------------------------------------
# Power budgets and energy accounting (acceptance criterion)
# ---------------------------------------------------------------------------


class TestPowerBudget:
    def test_budget_reshapes_a_mix_the_uncapped_planner_accepts(self):
        """The capped planner down-duplicates a tenant mix that the
        uncapped planner happily over-provisions."""
        arch = functional_testbed()
        uncapped = plan_spatial(arch, SMALL_TENANTS)
        budget = 0.7 * uncapped.peak_power
        capped = plan_spatial(arch, SMALL_TENANTS, power_budget=budget)
        assert uncapped.peak_power > budget       # the mix needed reshaping
        assert capped.peak_power <= budget
        assert capped.power_budget == budget and uncapped.power_budget is None
        # Reshaping = some tenant lost cores; nobody gained any.
        before = {t.spec.name: len(t.cores) for t in uncapped.tenants}
        after = {t.spec.name: len(t.cores) for t in capped.tenants}
        assert any(after[n] < before[n] for n in before)
        assert all(after[n] <= before[n] for n in before)

    def test_budget_below_floors_rejects_the_mix(self):
        with pytest.raises(CapacityError, match="residency floors"):
            plan_spatial(functional_testbed(), SMALL_TENANTS,
                         power_budget=1e-6)

    def test_temporal_rejects_over_budget_tenant(self):
        arch = functional_testbed()
        peak = plan_temporal(arch, SMALL_TENANTS).peak_power
        with pytest.raises(CapacityError, match="full chip"):
            plan_temporal(arch, SMALL_TENANTS, power_budget=0.9 * peak)
        # A generous budget passes through untouched.
        ok = plan_temporal(arch, SMALL_TENANTS, power_budget=2 * peak)
        assert ok.peak_power <= 2 * peak

    def test_temporal_peak_is_max_not_sum(self):
        arch = functional_testbed()
        spatial = plan_spatial(arch, SMALL_TENANTS)
        temporal = plan_temporal(arch, SMALL_TENANTS)
        assert temporal.peak_power == pytest.approx(
            max(t.service.peak_power for t in temporal.tenants))
        assert spatial.peak_power == pytest.approx(
            sum(t.service.peak_power for t in spatial.tenants))

    def test_bridge_budget_matches_live_planner(self, tmp_path):
        arch = functional_testbed()
        budget = 0.7 * plan_spatial(arch, SMALL_TENANTS).peak_power
        live = plan_spatial(arch, SMALL_TENANTS, place=False,
                            power_budget=budget)
        bridged = build_plans(arch, SMALL_TENANTS, modes=("spatial",),
                              runner=SweepRunner(cache_dir=str(tmp_path)),
                              power_budget=budget)["spatial"]
        for lt, bt in zip(live.tenants, bridged.tenants):
            assert lt.service == bt.service
            assert lt.cores == bt.cores

    def test_bridge_temporal_rejects_over_budget(self, tmp_path):
        arch = functional_testbed()
        peak = plan_temporal(arch, SMALL_TENANTS).peak_power
        with pytest.raises(CapacityError):
            build_plans(arch, SMALL_TENANTS, modes=("temporal",),
                        runner=SweepRunner(cache_dir=str(tmp_path)),
                        power_budget=0.9 * peak)

    def test_capped_report_stays_within_budget(self):
        arch = functional_testbed()
        budget = 0.7 * plan_spatial(arch, SMALL_TENANTS).peak_power
        plan = plan_spatial(arch, SMALL_TENANTS, power_budget=budget)
        trace = make_trace("poisson", SMALL_TENANTS, 2e-4, 100, seed=1)
        report = simulate(plan, trace)
        assert report.power_budget == budget
        assert report.peak_power <= budget
        assert report.completed == 100
        d = report.to_dict()
        assert d["power_budget"] == budget and d["peak_power"] <= budget

    def test_sharded_plan_rejects_budget(self):
        with pytest.raises(ScheduleError, match="spatial/temporal"):
            make_plan("sharded", functional_testbed(), SMALL_TENANTS,
                      power_budget=10.0)


class TestEnergyAccounting:
    def test_exact_energy_bookkeeping_per_batch_and_switch(self):
        """Hand-built plan: energy = batches x per-inference + switches."""
        plan = ServingPlan(
            mode="temporal", arch_name="synthetic",
            tenants=(
                TenantPlan(spec=TenantSpec("a", "mlp"), cores=(0, 1),
                           service=ServiceProfile(
                               latency_cycles=100.0, interval_cycles=10.0,
                               switch_cycles=5.0, energy_per_inference=7.0,
                               switch_energy=3.0, peak_power=2.0)),
                TenantPlan(spec=TenantSpec("b", "mlp"), cores=(0, 1),
                           service=ServiceProfile(
                               latency_cycles=100.0, interval_cycles=10.0,
                               switch_cycles=5.0, energy_per_inference=11.0,
                               switch_energy=13.0, peak_power=4.0)),
            ))
        # a, then b, then a again: three batches of one, three switches.
        trace = requests("a", 0.0) + requests("b", 200.0, start_index=1) \
            + requests("a", 500.0, start_index=2)
        report = ServingEngine(plan, FixedBatch(1)).run(trace)
        a = report.tenants[0]
        b = report.tenants[1]
        assert a.energy == pytest.approx(2 * (7.0 + 3.0))
        assert b.energy == pytest.approx(11.0 + 13.0)
        assert a.energy_per_request == pytest.approx(10.0)
        assert report.total_energy == pytest.approx(a.energy + b.energy)
        assert report.avg_power == pytest.approx(
            report.total_energy / report.horizon_cycles)
        assert report.peak_power == pytest.approx(4.0)  # temporal: max

    def test_spatial_tenants_pay_no_switch_energy(self):
        arch = functional_testbed()
        plan = make_plan("spatial", arch, SMALL_TENANTS)
        trace = make_trace("poisson", SMALL_TENANTS, 2e-4, 80, seed=3)
        report = simulate(plan, trace)
        per_inf = {t.spec.name: t.service.energy_per_inference
                   for t in plan.tenants}
        for t in report.tenants:
            assert t.energy == pytest.approx(t.completed * per_inf[t.tenant])
        assert report.total_energy == pytest.approx(
            sum(t.energy for t in report.tenants))

    def test_temporal_switches_add_energy(self):
        arch = functional_testbed()
        trace = make_trace("poisson", SMALL_TENANTS, 2e-4, 80, seed=3)
        spatial = simulate(make_plan("spatial", arch, SMALL_TENANTS), trace)
        temporal = simulate(make_plan("temporal", arch, SMALL_TENANTS),
                            trace)
        switch_energy = {
            t.spec.name: t.service.switch_energy
            for t in make_plan("temporal", arch, SMALL_TENANTS).tenants}
        assert all(e > 0 for e in switch_energy.values())
        # Executor energy decomposes into batches + switch reprograms.
        ex = temporal.executors[0]
        batch_energy = sum(t.energy for t in temporal.tenants)
        assert ex.energy == pytest.approx(batch_energy)
        assert ex.switches > 0
        assert temporal.total_energy > spatial.total_energy \
            or temporal.switch_cycles > 0

    def test_energy_deterministic(self):
        arch = functional_testbed()
        trace = make_trace("bursty", SMALL_TENANTS, 5e-4, 150, seed=7)
        runs = [simulate(make_plan("temporal", arch, SMALL_TENANTS),
                         trace).to_dict() for _ in range(2)]
        assert runs[0] == runs[1]
        assert runs[0]["total_energy"] > 0
