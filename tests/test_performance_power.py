"""Performance simulator and power model."""

import pytest

from repro.arch import isaac_baseline, jia2021
from repro.models import conv_relu_example, resnet18, vgg16
from repro.sched import CIMMLC, CompilerOptions, no_optimization
from repro.sim import (
    PerformanceSimulator,
    PowerModel,
    activity_timeline,
)


@pytest.fixture(scope="module")
def arch():
    return isaac_baseline()


@pytest.fixture(scope="module")
def graph():
    return resnet18()


class TestLatency:
    def test_pipelined_never_slower(self, arch, graph):
        pipe = CIMMLC(arch, CompilerOptions(
            max_level="CG", duplicate=False)).compile(graph)
        seq = no_optimization(graph, arch)
        assert pipe.total_cycles <= seq.total_cycles

    def test_report_consistency(self, arch, graph):
        report = CIMMLC(arch).compile(graph).report
        assert report.total_cycles == pytest.approx(
            report.compute_cycles + report.reconfiguration_cycles)
        assert len(report.op_latency) == len(graph.nodes)
        assert all(lat >= 0 for lat in report.op_latency.values())

    def test_segment_bottleneck_identified(self, arch, graph):
        report = no_optimization(graph, arch).report
        seg = report.segments[0]
        assert seg.bottleneck in report.op_latency
        assert seg.bottleneck_cycles == pytest.approx(
            max(report.op_latency[n.name] for n in graph.nodes))

    def test_speedup_over(self, arch, graph):
        base = no_optimization(graph, arch).report
        fast = CIMMLC(arch).compile(graph).report
        assert fast.speedup_over(base) > 1
        assert base.speedup_over(fast) < 1

    def test_multi_segment_pays_reconfiguration(self, graph):
        small = isaac_baseline().with_cores(8)
        report = CIMMLC(small).compile(graph).report
        assert len(report.segments) > 1
        assert report.reconfiguration_cycles > 0

    def test_sram_hides_reconfiguration(self):
        """On the SRAM CM chip the pipelined schedule overlaps weight
        streaming with compute; sequential execution cannot."""
        graph = vgg16()
        arch = jia2021()
        seq = no_optimization(graph, arch).report
        pipe = CIMMLC(arch).compile(graph).report
        assert pipe.reconfiguration_cycles <= seq.reconfiguration_cycles

    def test_summary_renders(self, arch, graph):
        text = CIMMLC(arch).compile(graph).report.summary()
        assert "total cycles" in text


class TestPower:
    def test_breakdown_sums_to_one(self, arch, graph):
        report = CIMMLC(arch).compile(graph).report
        breakdown = report.power.breakdown()
        assert sum(breakdown.values()) == pytest.approx(1.0)
        # Crossbar activation dominates (the paper reports 83% on PUMA).
        assert breakdown["crossbar"] > 0.5

    def test_peak_power_positive_and_bounded(self, arch, graph):
        report = CIMMLC(arch).compile(graph).report
        assert 0 < report.power.peak_active_crossbars <= \
            arch.total_crossbars
        assert report.power.peak_power > 0

    def test_stagger_cuts_peak_power(self, arch, graph):
        unstaggered = CIMMLC(arch, CompilerOptions(
            max_level="MVM", mvm_stagger=False)).compile(graph)
        staggered = CIMMLC(arch, CompilerOptions(
            max_level="MVM", mvm_stagger=True)).compile(graph)
        assert staggered.peak_power < unstaggered.peak_power
        # Paper: the staggered MVM pipeline cuts peak power by >= 50%
        # (75% on PUMA, up to 85% on ResNet101).
        assert staggered.peak_power < 0.5 * unstaggered.peak_power

    def test_cg_raises_peak_over_sequential(self, arch, graph):
        """Fig. 21(d): concurrency raises peak power before MVM pulls it
        back."""
        seq = no_optimization(graph, arch)
        pd = CIMMLC(arch, CompilerOptions(max_level="CG")).compile(graph)
        assert pd.peak_power > seq.peak_power

    def test_per_xb_power_scales_with_converters(self):
        lo = PowerModel(isaac_baseline())
        hi = PowerModel(isaac_baseline().with_xb_size((128, 128)))
        assert lo.per_xb_cycle_power() == hi.per_xb_cycle_power()
        from dataclasses import replace

        arch = isaac_baseline()
        hi_adc = replace(arch, xb=replace(arch.xb, adc_bits=16))
        assert PowerModel(hi_adc).per_xb_cycle_power() > \
            lo.per_xb_cycle_power()


class TestTimeline:
    def test_timeline_intervals_valid(self, arch):
        graph = conv_relu_example()
        schedule = CIMMLC(arch).schedule(graph)
        timeline = activity_timeline(schedule)
        assert timeline
        for start, end, active in timeline:
            assert 0 <= start < end
            assert active > 0

    def test_sequential_timeline_disjoint(self, arch):
        graph = conv_relu_example()
        schedule = no_optimization(graph, arch).schedule
        timeline = activity_timeline(schedule)
        for (s1, e1, _), (s2, e2, _) in zip(timeline, timeline[1:]):
            assert e1 <= s2 + 1e-9
