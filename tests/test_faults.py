"""Fault injection: fuzzed masks, bit-identity gates, degraded goldens.

Three property families guard :mod:`repro.faults`:

* **Safety** — under any fuzzed fault mask, no placement ever touches
  dead silicon and no shard stage exceeds its chip's surviving
  capacity (hypothesis generates the masks).
* **Bit-identity** — a zero fault model reproduces the fault-free path
  bit for bit across serve, fleet, shard, and trace, with the fast
  path on or off.
* **Determinism** — fixed-seed degraded runs pin exact digests
  (engine, fleet, trace), and degraded recordings replay and analyze
  exactly like healthy ones.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import MultiChipSystem, functional_testbed
from repro.errors import CapacityError, CIMError, ScheduleError
from repro.faults import (
    FaultModel,
    degradation_sweep,
    plan_degraded,
    spread_mask,
    sweep_digest,
    sweep_rows,
)
from repro.fleet import Autoscaler, build_fleet, simulate_fleet
from repro.models import lenet
from repro.perf import fastpath
from repro.scale import shard
from repro.serve import TenantSpec, make_plan, make_trace, simulate
from repro.trace import (
    CATEGORIES,
    Trace,
    attribute,
    record_fleet,
    replay,
    request_latencies,
    request_path,
)

ARCH = functional_testbed()
SPECS = [TenantSpec("mlp", "mlp", 2.0),
         TenantSpec("tiny", "tiny_conv", 1.0)]


def _trace(n=400, rate=4e-6, seed=0, kind="poisson"):
    return make_trace(kind, SPECS, rate, n, seed=seed)


@pytest.fixture(scope="module")
def fleet_plan():
    return build_fleet(ARCH, SPECS, replicas=3)


# ---------------------------------------------------------------------------
# The model itself
# ---------------------------------------------------------------------------


class TestFaultModel:
    def test_normalises_sorted_unique(self):
        f = FaultModel(dead_cores=(7, 3, 7, 1),
                       dead_crossbars=((2, 1), (2, 1), (0, 3)))
        assert f.dead_cores == (1, 3, 7)
        assert f.dead_crossbars == ((0, 3), (2, 1))

    def test_validation(self):
        with pytest.raises(CIMError):
            FaultModel(dead_cores=(-1,))
        with pytest.raises(CIMError):
            FaultModel(drift_interval=0.0)
        with pytest.raises(CIMError):
            FaultModel(link_derate=0.0)
        with pytest.raises(CIMError):
            FaultModel(link_derate=1.5)
        with pytest.raises(CIMError):
            FaultModel(chip_death_time=-1.0)
        with pytest.raises(CIMError):
            FaultModel(chip_death_rid=-2)

    def test_is_zero(self):
        assert FaultModel().is_zero()
        for f in (FaultModel(dead_cores=(0,)),
                  FaultModel(drift_interval=1.0),
                  FaultModel(link_derate=0.5),
                  FaultModel(chip_death_time=5.0)):
            assert not f.is_zero()

    def test_dict_roundtrip(self):
        f = FaultModel(dead_cores=(1, 5), dead_crossbars=((2, 0),),
                       drift_interval=100.0, link_derate=0.25,
                       chip_death_time=9.0, chip_death_rid=2)
        assert FaultModel.from_dict(f.to_dict()) == f
        assert FaultModel.from_dict(FaultModel().to_dict()).is_zero()

    def test_surviving_cores_excludes_dead_and_xb_dead(self):
        xb = ARCH.core.xb_number
        # core 2 loses every crossbar -> counts as dead
        f = FaultModel(dead_cores=(0,),
                       dead_crossbars=tuple((2, i) for i in range(xb)))
        survivors = f.surviving_cores(ARCH)
        assert 0 not in survivors and 2 not in survivors
        assert len(survivors) == ARCH.chip.core_number - 2

    def test_ids_beyond_die_ignored(self):
        f = FaultModel(dead_cores=(10_000,))
        assert len(f.surviving_cores(ARCH)) == ARCH.chip.core_number

    def test_degrade_arch_shrinks(self):
        f = FaultModel(dead_cores=(3, 7), dead_crossbars=((5, 0),))
        degraded = f.degrade_arch(ARCH)
        assert degraded.chip.core_number == ARCH.chip.core_number - 2
        assert degraded.core.xb_number == ARCH.core.xb_number - 1

    def test_degrade_arch_nothing_left(self):
        f = FaultModel(dead_cores=tuple(range(ARCH.chip.core_number)))
        with pytest.raises(CapacityError, match="dead_cores"):
            f.degrade_arch(ARCH)

    def test_spread_mask(self):
        assert spread_mask(16, 4) == (0, 4, 8, 12)
        assert spread_mask(16, 0) == ()
        mask = spread_mask(768, 96)
        assert len(mask) == 96 and len(set(mask)) == 96
        assert all(0 <= c < 768 for c in mask)
        with pytest.raises(CIMError):
            spread_mask(8, 9)


# ---------------------------------------------------------------------------
# Zero-fault bit-identity
# ---------------------------------------------------------------------------


class TestZeroFaultBitIdentity:
    def test_plan_degraded_zero_is_make_plan(self):
        trace = _trace()
        base = simulate(make_plan("spatial", ARCH, SPECS), trace)
        for fault in (None, FaultModel()):
            plan = plan_degraded(ARCH, SPECS, fault)
            assert simulate(plan, trace).digest() == base.digest()

    def test_fleet_zero_fault_bit_identical(self, fleet_plan):
        trace = _trace()
        base = simulate_fleet(fleet_plan, trace)
        zero = simulate_fleet(fleet_plan, trace, fault=FaultModel())
        assert zero.digest() == base.digest()
        assert zero.fault is None and "fault" not in zero.to_dict()

    def test_recorded_zero_fault_bit_identical(self, fleet_plan):
        trace = _trace()
        r0, t0 = record_fleet(fleet_plan, trace)
        r1, t1 = record_fleet(fleet_plan, trace, fault=FaultModel())
        assert t1.digest() == t0.digest()
        assert r1.digest() == r0.digest()

    def test_shard_zero_fault_bit_identical(self):
        system = MultiChipSystem(ARCH, 2)
        base = shard(lenet(), system)
        zero = shard(lenet(), system, faults=FaultModel())
        assert zero.to_dict() == base.to_dict()


# ---------------------------------------------------------------------------
# Fuzzed fault masks (hypothesis)
# ---------------------------------------------------------------------------

mask_strategy = st.builds(
    lambda cores, xbs: FaultModel(
        dead_cores=tuple(cores),
        dead_crossbars=tuple((c, x) for c, x in xbs)),
    cores=st.sets(st.integers(0, ARCH.chip.core_number - 1), max_size=12),
    xbs=st.sets(st.tuples(st.integers(0, ARCH.chip.core_number - 1),
                          st.integers(0, ARCH.core.xb_number - 1)),
                max_size=6),
)


def _placed_cores(plan):
    """Every physical core id any tenant schedule placed onto."""
    used = set()
    for t in plan.tenants:
        if t.schedule is None:
            continue
        for node in t.schedule.graph.nodes:
            used.update(node.annotations.get("cores_placed", ()))
    return used


class TestFuzzedMasks:
    @settings(max_examples=25, deadline=None)
    @given(fault=mask_strategy)
    def test_placement_never_touches_dead_silicon(self, fault):
        survivors = set(fault.surviving_cores(ARCH))
        try:
            plan = plan_degraded(ARCH, SPECS, fault)
        except CapacityError as exc:
            # Infeasible masks must name the resource mask.
            assert "dead" in str(exc) or "survivors" in str(exc)
            return
        for t in plan.tenants:
            assert set(t.cores) <= survivors
        assert _placed_cores(plan) <= survivors

    @settings(max_examples=10, deadline=None)
    @given(dead0=st.sets(st.integers(0, 31), max_size=8),
           dead1=st.sets(st.integers(0, 31), max_size=8))
    def test_shard_stages_fit_surviving_capacity(self, dead0, dead1):
        system = MultiChipSystem(ARCH, 2)
        faults = {0: FaultModel(dead_cores=tuple(dead0)),
                  1: FaultModel(dead_cores=tuple(dead1))}
        pools = [set(f.surviving_cores(ARCH)) for f in faults.values()]
        try:
            plan = shard(lenet(), system, faults=faults)
        except CapacityError:
            return
        for idx in range(plan.num_stages):
            assert plan.stage_cores_used(idx) <= len(pools[idx])
            placed = set()
            for node in plan.schedules[idx].graph.nodes:
                placed.update(node.annotations.get("cores_placed", ()))
            assert placed <= pools[idx]

    @settings(max_examples=6, deadline=None)
    @given(fault=mask_strategy)
    def test_fastpath_digest_equality_under_mask(self, fault):
        trace = _trace(n=80)
        digests = []
        for enabled in (False, True):
            with fastpath(enabled):
                try:
                    plan = plan_degraded(ARCH, SPECS, fault)
                except CapacityError:
                    digests.append("infeasible")
                    continue
                digests.append(simulate(plan, trace).digest())
        assert digests[0] == digests[1]


# ---------------------------------------------------------------------------
# Run-time injection: drift and chip death
# ---------------------------------------------------------------------------


class TestDriftInjection:
    def test_drift_rewrites_and_energy(self, fleet_plan):
        trace = _trace()
        horizon = trace[-1].arrival
        fault = FaultModel(drift_interval=horizon / 5)
        report = simulate_fleet(fleet_plan, trace, fault=fault)
        assert report.drift_rewrites > 0
        assert report.fault_energy > 0
        assert report.fault["drift_stall_cycles"] > 0
        base = simulate_fleet(fleet_plan, trace)
        assert report.total_energy == pytest.approx(
            base.replica_energy + report.deploy_energy
            + report.link_energy + report.fault_energy, rel=0.5)

    def test_drift_prices_resident_deploy(self, fleet_plan):
        trace = _trace()
        horizon = trace[-1].arrival
        fault = FaultModel(drift_interval=horizon / 3)
        report = simulate_fleet(fleet_plan, trace, fault=fault)
        # Each rewrite pays some tenant's deploy energy: the total is a
        # sum of per-executor deploy energies, so it divides evenly.
        deploys = {t.spec.name: t.service.deploy_energy
                   for p in fleet_plan.replicas for t in p.tenants}
        assert report.fault_energy > 0
        assert min(deploys.values()) <= report.fault_energy

    def test_drift_report_fields_in_export(self, fleet_plan):
        trace = _trace(n=150)
        fault = FaultModel(drift_interval=trace[-1].arrival / 2)
        report = simulate_fleet(fleet_plan, trace, fault=fault)
        exported = report.to_dict()["fault"]
        assert exported["model"] == fault.to_dict()
        assert exported["drift_rewrites"] == report.drift_rewrites
        assert "availability" in exported


class TestChipDeath:
    def test_death_without_spare(self, fleet_plan):
        trace = _trace()
        t_death = trace[len(trace) // 2].arrival
        fault = FaultModel(chip_death_time=t_death, chip_death_rid=1)
        report = simulate_fleet(fleet_plan, trace, fault=fault)
        death = report.fault["chip_death"]
        assert death["rid"] == 1 and death["time"] == t_death
        assert death["replacement"] is None
        assert report.recovery_cycles is None
        assert 0.0 < report.availability < 1.0
        assert any(e[1] == "fail" for e in report.scale_events)

    def test_death_with_spare_recovers(self):
        plan = build_fleet(ARCH, SPECS, replicas=3)
        trace = _trace()
        t_death = trace[len(trace) // 2].arrival
        fault = FaultModel(chip_death_time=t_death, chip_death_rid=0)
        scaler = Autoscaler(min_replicas=2)
        report = simulate_fleet(plan, trace, autoscaler=scaler,
                                fault=fault)
        death = report.fault["chip_death"]
        if death["was_active"]:
            assert death["replacement"] is not None
            assert report.recovery_cycles > 0
            assert report.availability > 0.9

    def test_lost_and_rerouted_accounting(self, fleet_plan):
        trace = _trace()
        t_death = trace[len(trace) // 2].arrival
        fault = FaultModel(chip_death_time=t_death, chip_death_rid=1)
        report = simulate_fleet(fleet_plan, trace, fault=fault)
        lost = report.fault["lost_requests"]
        assert report.rejections.get("chip_death", 0) == lost
        assert report.completed + report.rejected == len(trace)

    def test_death_rid_validated(self, fleet_plan):
        fault = FaultModel(chip_death_time=10.0, chip_death_rid=99)
        with pytest.raises(ScheduleError):
            simulate_fleet(fleet_plan, _trace(n=50), fault=fault)

    def test_availability_is_one_without_death(self, fleet_plan):
        fault = FaultModel(drift_interval=1e9)
        report = simulate_fleet(fleet_plan, _trace(n=100), fault=fault)
        assert report.fault["availability"] == 1.0
        assert report.fault["chip_death"] is None


# ---------------------------------------------------------------------------
# Trace: the fault span category end to end
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def degraded_recording(fleet_plan):
    trace = _trace()
    horizon = trace[-1].arrival
    fault = FaultModel(drift_interval=horizon / 4,
                       chip_death_time=horizon / 2, chip_death_rid=1)
    report, rec = record_fleet(fleet_plan, trace, fault=fault)
    return report, rec


class TestFaultTraceCategory:
    def test_fault_is_a_category(self):
        assert "fault" in CATEGORIES
        # Appended last: compact-format category indices stay stable.
        assert CATEGORIES[-1] == "fault"

    def test_recording_contains_fault_spans(self, degraded_recording):
        report, trace = degraded_recording
        cats = {s.cat for s in trace.spans}
        assert "fault" in cats
        names = {s.name for s in trace.spans if s.cat == "fault"}
        assert any(n.startswith("drift:") for n in names)
        assert any(n.startswith("chip_death:") for n in names)

    def test_report_embeds_trace_digest(self, degraded_recording):
        report, trace = degraded_recording
        assert report.trace_digest == trace.digest()

    def test_chrome_export_includes_fault_spans(self, degraded_recording):
        _, trace = degraded_recording
        chrome = trace.to_chrome()
        events = [e for e in chrome["traceEvents"]
                  if e.get("cat") == "fault"]
        assert events

    def test_compact_roundtrip_preserves_digest(self, tmp_path,
                                                degraded_recording):
        _, trace = degraded_recording
        path = str(tmp_path / "degraded.json")
        trace.save(path)
        loaded = Trace.load(path)
        assert loaded.digest() == trace.digest()
        assert {s.cat for s in loaded.spans} == {s.cat for s in trace.spans}

    def test_identity_replay_bit_identical_drift(self, fleet_plan):
        trace = _trace()
        fault = FaultModel(drift_interval=trace[-1].arrival / 4)
        _, rec = record_fleet(fleet_plan, trace, fault=fault)
        assert replay(rec).trace.digest() == rec.digest()

    def test_identity_replay_bit_identical_death(self, degraded_recording):
        _, trace = degraded_recording
        assert replay(trace).trace.digest() == trace.digest()

    def test_request_path_sums_exactly_on_degraded(self,
                                                   degraded_recording):
        _, trace = degraded_recording
        lats = request_latencies(trace)
        worst = max(lats, key=lambda i: (lats[i], i))
        path = request_path(trace, worst)
        assert path.total == pytest.approx(lats[worst], rel=1e-12)

    def test_attribution_gains_fault_axis(self, fleet_plan,
                                          degraded_recording):
        _, degraded = degraded_recording
        out = attribute(degraded)
        assert out["magnitudes"].get("fault", 0.0) > 0.0
        _, healthy = record_fleet(fleet_plan, _trace(n=100))
        assert "fault" not in attribute(healthy)["magnitudes"]


# ---------------------------------------------------------------------------
# Capacity errors carry the resource mask
# ---------------------------------------------------------------------------


class TestCapacityErrorMasks:
    def test_plan_degraded_names_mask(self):
        n = ARCH.chip.core_number
        fault = FaultModel(dead_cores=tuple(range(1, n)))  # one survivor
        with pytest.raises(CapacityError) as err:
            plan_degraded(ARCH, SPECS, fault)
        msg = str(err.value)
        assert "dead_cores" in msg and "survivors" in msg

    def test_region_shortfall_names_pool(self):
        with pytest.raises(CapacityError, match="pool"):
            make_plan("spatial", ARCH.with_cores(8), SPECS,
                      core_pool=(0, 1, 2, 3),
                      die_cores=ARCH.chip.core_number)

    def test_shard_infeasible_names_surviving_capacity(self):
        system = MultiChipSystem(ARCH, 2)
        faults = FaultModel(dead_cores=tuple(range(26)))  # 6 left/chip
        with pytest.raises(CapacityError,
                           match="surviving cores per chip"):
            shard(lenet(), system, faults=faults)


# ---------------------------------------------------------------------------
# Degradation sweep
# ---------------------------------------------------------------------------


class TestDegradationSweep:
    @pytest.fixture(scope="class")
    def points(self, tmp_path_factory):
        from repro.explore import SweepRunner

        cache = str(tmp_path_factory.mktemp("faults-sweep"))
        return degradation_sweep(
            ARCH, SPECS, [0, 4, 8, ARCH.chip.core_number], 4e-6,
            num_requests=150, seed=0,
            runner=SweepRunner(cache_dir=cache))

    def test_point_shapes(self, points):
        assert [p.dead for p in points] == [0, 4, 8,
                                            ARCH.chip.core_number]
        for p in points[:3]:
            assert p.feasible and p.report.completed > 0
            assert set(p.fault.dead_cores) == \
                set(spread_mask(ARCH.chip.core_number, p.dead))

    def test_all_cores_dead_is_infeasible(self, points):
        last = points[-1]
        assert not last.feasible and last.report is None
        assert "dead_cores" in last.error or "cores" in last.error
        assert last.row()["feasible"] is False

    def test_deterministic_digest(self, points):
        repeat = degradation_sweep(ARCH, SPECS,
                                   [0, 4, 8, ARCH.chip.core_number],
                                   4e-6, num_requests=150, seed=0)
        assert sweep_digest(repeat) == sweep_digest(points)
        assert sweep_rows(repeat) == sweep_rows(points)


# ---------------------------------------------------------------------------
# Golden degraded digests (fixed seed => these exact hashes)
# ---------------------------------------------------------------------------

#: Captured at PR 8 on functional_testbed with SPECS, _trace(seed=0).
GOLDEN = {
    "serve_degraded": "f3d46907eb132c40ec1026f2ac7767bc"
                      "d740a9fdb25407a6d33f50a3f5bb84dd",
    "fleet_injected": "f5f08bf7f295de6a816d9c78b0baebe1"
                      "7d077b2cd8a13397efffff8a9c92a6b6",
    "trace_injected": "d8a13c49225bba860a96167708eb8e00"
                      "7a566430a9bb590809e0f1869d88fdab",
}


class TestGoldenDegradedDigests:
    def test_serve_degraded_digest(self):
        fault = FaultModel(dead_cores=spread_mask(
            ARCH.chip.core_number, 6))
        plan = plan_degraded(ARCH, SPECS, fault)
        assert simulate(plan, _trace()).digest() == \
            GOLDEN["serve_degraded"]

    def test_fleet_and_trace_injected_digests(self, degraded_recording):
        report, trace = degraded_recording
        assert report.digest() == GOLDEN["fleet_injected"]
        assert trace.digest() == GOLDEN["trace_injected"]


# ---------------------------------------------------------------------------
# EXPERIMENTS.md headline pins (isaac-baseline)
# ---------------------------------------------------------------------------

#: The exact configurations and digests EXPERIMENTS.md reports.
HEADLINE_SWEEP_DIGEST = ("2627aeabdd851b377fbe6608d400b32d"
                         "7f746919a22aba27c427193c6608842b")
HEADLINE_STATIC_DEATH = ("d9c827face2ba249420184bf49d010ac"
                         "fe98eaecf10582ccbb25eddf3552c610")
HEADLINE_SCALED_DEATH = ("a3556025edd9d03425f66fe746823e6d"
                         "2a2dde7dac5952a5e016711b36894f07")


class TestExperimentHeadlines:
    """Digest gates for the two EXPERIMENTS.md fault headlines."""

    @pytest.fixture(scope="class")
    def isaac(self):
        from repro.arch import isaac_baseline

        return isaac_baseline()

    @pytest.fixture(scope="class")
    def isaac_specs(self):
        return [TenantSpec("resnet18", "resnet18", 4.0),
                TenantSpec("mobilenet", "mobilenet", 1.0)]

    def test_degradation_headline_digest(self, tmp_path, isaac,
                                         isaac_specs):
        from repro.explore import SweepRunner

        points = degradation_sweep(
            isaac, isaac_specs, [0, 38, 76, 153, 307], 50e-6,
            num_requests=400, seed=0,
            runner=SweepRunner(cache_dir=str(tmp_path)))
        assert sweep_digest(points) == HEADLINE_SWEEP_DIGEST
        assert all(p.feasible for p in points)
        # Zero dead cores reproduces the fault-free plan bit for bit.
        healthy = simulate(make_plan("spatial", isaac, isaac_specs),
                           make_trace("poisson", isaac_specs, 50e-6,
                                      400, seed=0))
        assert points[0].report.digest() == healthy.digest()

    def test_chip_death_headline_digests(self, isaac, isaac_specs):
        trace = make_trace("diurnal-bursty", isaac_specs, 80e-6, 3000,
                           seed=0)
        fault = FaultModel(chip_death_time=trace[-1].arrival / 2,
                           chip_death_rid=0)
        static = simulate_fleet(
            build_fleet(isaac, isaac_specs, replicas=4), trace,
            fault=fault)
        assert static.digest() == HEADLINE_STATIC_DEATH
        assert static.recovery_cycles is None
        assert static.availability == pytest.approx(0.873419, abs=1e-4)
        scaled = simulate_fleet(
            build_fleet(isaac, isaac_specs, replicas=6), trace,
            autoscaler=Autoscaler(min_replicas=2), fault=fault)
        assert scaled.digest() == HEADLINE_SCALED_DEATH
        assert scaled.recovery_cycles == pytest.approx(28_966, abs=1.0)
        assert scaled.availability > 0.999
