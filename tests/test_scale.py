"""Multi-chip sharding: link model, partitioner, pipeline, integrations."""

import pytest

from repro import CIMMLC
from repro.arch import (
    ChipLink,
    MultiChipSystem,
    functional_testbed,
    isaac_baseline,
)
from repro.errors import ArchitectureError, CapacityError
from repro.explore import SweepRunner, SweepSpace
from repro.models import get_model, resnet18
from repro.scale import (
    boundary_cut_bits,
    link_table,
    min_chips,
    partition_layers,
    pipeline_summary,
    placement_table,
    shard,
    stage_subgraph,
    stage_transfers,
)
from repro.serve import TenantSpec, plan_sharded, poisson_trace, simulate

#: A capacity-constrained chip where sharding genuinely helps: resnet18
#: fits resident (186 cores minimum) but leaves little duplication room.
SMALL_CHIP = isaac_baseline().with_cores(200)
LINK = ChipLink(bandwidth_bits=512.0, latency_cycles=100.0)


# ---------------------------------------------------------------------------
# Link model
# ---------------------------------------------------------------------------


class TestChipLink:
    def test_transfer_decomposes(self):
        link = ChipLink(bandwidth_bits=128.0, latency_cycles=50.0)
        assert link.serialization_cycles(1280) == 10.0
        assert link.transfer_cycles(1280, hops=1) == 60.0
        assert link.transfer_cycles(1280, hops=3) == 160.0
        assert link.transfer_cycles(0, hops=2) == 0.0

    def test_serialization_overhead(self):
        link = ChipLink(bandwidth_bits=100.0, latency_cycles=0.0,
                        serialization_overhead=1.25)
        assert link.serialization_cycles(1000) == 12.5

    def test_validation(self):
        with pytest.raises(ArchitectureError):
            ChipLink(bandwidth_bits=0)
        with pytest.raises(ArchitectureError):
            ChipLink(serialization_overhead=0.5)

    def test_topology_hops(self):
        chip = functional_testbed()
        ring = MultiChipSystem(chip, 4, topology="ring")
        assert ring.hops(0, 3) == 1 and ring.hops(0, 2) == 2
        full = MultiChipSystem(chip, 4, topology="fully-connected")
        assert full.hops(0, 3) == 1
        mesh = MultiChipSystem(chip, 4, topology="mesh")
        assert mesh.hops(0, 3) == 2   # 2x2 grid corner to corner
        chain = MultiChipSystem(chip, 4, topology="chain")
        assert chain.hops(0, 3) == 3  # no wraparound
        block = MultiChipSystem(chip, 8, topology="ring").block(4)
        assert block.topology == "chain" and block.num_chips == 4
        with pytest.raises(ArchitectureError):
            MultiChipSystem(chip, 2, topology="torus")
        with pytest.raises(ArchitectureError):
            ring.hops(0, 4)

    def test_capacities_scale_with_chips(self):
        chip = functional_testbed()
        sys4 = MultiChipSystem(chip, 4)
        assert sys4.total_cores == 4 * chip.chip.core_number
        assert sys4.total_capacity_bits == 4 * chip.chip_capacity_bits
        assert sys4.with_chips(2).num_chips == 2


# ---------------------------------------------------------------------------
# Partitioner
# ---------------------------------------------------------------------------


class TestPartition:
    def test_stages_cover_graph_in_topo_order(self):
        graph = resnet18()
        stages = partition_layers(graph, 3, SMALL_CHIP)
        flat = [n for s in stages for n in s]
        assert flat == [n.name for n in graph.topological()]
        assert len(stages) == 3

    def test_stage_capacity_respected(self):
        graph = resnet18()
        arch = SMALL_CHIP
        from repro.sched.costs import CostModel

        profiles = CostModel(arch).profiles(graph)
        for stage in partition_layers(graph, 4, arch):
            cores = sum(profiles[n].cores_per_replica
                        for n in stage if profiles[n].is_cim)
            bits = sum(profiles[n].weight_bits
                       for n in stage if profiles[n].is_cim)
            assert cores <= arch.chip.core_number
            assert bits <= arch.chip_capacity_bits

    def test_min_chips_matches_feasibility(self):
        small = functional_testbed().with_cores(12)
        graph = get_model("lenet")
        needed = min_chips(graph, small)
        assert needed > 1
        with pytest.raises(CapacityError):
            partition_layers(graph, needed - 1, small)
        stages = partition_layers(graph, needed, small)
        assert len(stages) == needed

    def test_boundary_cut_counts_crossing_tensors(self):
        graph = get_model("mlp")
        order = [n.name for n in graph.topological()]
        bits = boundary_cut_bits(graph, order, 1)
        assert bits > 0

    def test_stage_transfers_adjacent_chain(self):
        graph = get_model("mlp")
        stages = partition_layers(graph, 2, functional_testbed())
        transfers = stage_transfers(graph, stages)
        assert transfers
        for src, dst, bits in transfers:
            assert src < dst and bits > 0


# ---------------------------------------------------------------------------
# Stage subgraphs
# ---------------------------------------------------------------------------


class TestStageSubgraph:
    def test_boundaries_become_inputs_outputs(self):
        graph = resnet18()
        graph.infer_shapes()
        stages = partition_layers(graph, 2, SMALL_CHIP)
        sub0 = stage_subgraph(graph, stages[0], 0)
        sub1 = stage_subgraph(graph, stages[1], 1)
        sub0.validate()
        sub1.validate()
        # Every tensor stage 1 imports is exported by stage 0 or a model
        # input.
        exported = set(sub0.outputs) | set(graph.inputs)
        assert set(sub1.inputs) <= exported
        assert set(sub1.outputs) >= set(graph.outputs)


# ---------------------------------------------------------------------------
# Acceptance pin (a): residency requires sharding
# ---------------------------------------------------------------------------


class TestResidency:
    def test_model_exceeding_one_chip_needs_sharding(self):
        """lenet's weights exceed a 12-core functional testbed chip; it
        shards (and runs) only across >= min_chips chips."""
        small = functional_testbed().with_cores(12)
        graph = get_model("lenet")
        assert graph.total_weight_bits() > small.chip_capacity_bits
        with pytest.raises(CapacityError):
            shard(get_model("lenet"), MultiChipSystem(small, 1))
        needed = min_chips(graph, small)
        plan = shard(get_model("lenet"), MultiChipSystem(small, needed))
        assert plan.num_stages == needed
        assert plan.report.throughput > 0
        for i in range(plan.num_stages):
            assert plan.stage_weight_bits(i) <= small.chip_capacity_bits
            assert plan.stage_cores_used(i) <= small.chip.core_number
            # Resident stages never pay reconfiguration stalls.
            assert plan.report.stages[i].reconfiguration_cycles == 0.0


# ---------------------------------------------------------------------------
# Acceptance pin (b): 2-chip resnet18 beats 1 chip by the predicted margin
# ---------------------------------------------------------------------------


class TestPipelineSpeedup:
    def test_two_chip_resnet18_beats_one_chip(self):
        single = CIMMLC(SMALL_CHIP).compile(resnet18())
        plan = shard(resnet18(), MultiChipSystem(SMALL_CHIP, 2, link=LINK))
        report = plan.report
        # The model's own prediction: the slowest stage or physical link
        # channel paces.
        predicted = max(list(report.stage_intervals)
                        + list(report.channel_occupancies.values()))
        assert report.steady_state_interval == predicted
        speedup = report.speedup_over(single.report)
        assert speedup == pytest.approx(
            single.report.steady_state_interval
            / report.steady_state_interval)
        # Splitting the core budget across two chips should cut the
        # bottleneck interval by a real margin, not epsilon.
        assert speedup >= 1.8

    def test_latency_includes_fill_and_links(self):
        plan = shard(resnet18(), MultiChipSystem(SMALL_CHIP, 2, link=LINK))
        report = plan.report
        chain = sum(t.cycles for t in report.transfers
                    if t.dst_stage == t.src_stage + 1)
        assert report.total_cycles == pytest.approx(
            sum(r.total_cycles for r in report.stages) + chain)
        assert report.batch_cycles(5) == pytest.approx(
            report.total_cycles + 4 * report.steady_state_interval)

    def test_thin_link_becomes_the_bottleneck(self):
        thin = ChipLink(bandwidth_bits=16.0, latency_cycles=100.0)
        plan = shard(resnet18(), MultiChipSystem(SMALL_CHIP, 2, link=thin))
        report = plan.report
        assert report.steady_state_interval == \
            max(report.channel_occupancies.values())
        assert report.steady_state_interval > max(report.stage_intervals)

    def test_shared_channel_occupancy_sums_transfers(self):
        """Transfers relayed over the same physical wire pace together."""
        plan = shard(resnet18(),
                     MultiChipSystem(SMALL_CHIP, 4, link=LINK,
                                     topology="chain"))
        report = plan.report
        busy = report.channel_occupancies
        # Per-channel busy time is at least any single transfer crossing
        # it, and the total occupancy is conserved across channels.
        assert sum(busy.values()) == pytest.approx(
            sum(t.occupancy * max(1, t.hops) for t in report.transfers))

    def test_wraparound_transfers_load_the_wrap_wires(self):
        """A ring-wraparound transfer occupies the wires it was priced
        on, not the unused forward chain."""
        from repro.sim.performance import (
            LinkTransfer,
            MultiChipReport,
        )

        base = shard(resnet18(),
                     MultiChipSystem(SMALL_CHIP, 2, link=LINK)).report
        # 5-chip ring, one skip transfer stage 0 -> 3 routed the short
        # way (2 hops via chip 4).
        skip = LinkTransfer(src_stage=0, dst_stage=3, src_chip=0,
                            dst_chip=3, bits=512, hops=2, cycles=201.0,
                            occupancy=1.0)
        report = MultiChipReport(
            stages=tuple([base.stages[0]] * 5),
            chips=(0, 1, 2, 3, 4),
            transfers=(skip,),
        )
        busy = report.channel_occupancies
        assert busy == {(0, 4): 1.0, (4, 3): 1.0}


# ---------------------------------------------------------------------------
# Acceptance pin (b'): chip-count sweep saturates deterministically
# ---------------------------------------------------------------------------


class TestChipSweep:
    def test_sweep_saturation_deterministic_and_cached(self, tmp_path):
        from repro.sched import CompilerOptions

        space = SweepSpace.grid(
            SMALL_CHIP, resnet18(), {"chips": [1, 2, 3, 4]},
            series=[("CIM-MLC", CompilerOptions())])
        runner = SweepRunner(cache_dir=str(tmp_path))
        first = runner.run(space)
        intervals = [r.summary["steady_state_interval"] for r in first]
        # Monotone non-increasing, then flat: find the saturation point.
        assert all(a >= b - 1e-9 for a, b in zip(intervals, intervals[1:]))
        saturation = next(
            i + 1 for i, (a, b) in enumerate(zip(intervals, intervals[1:]))
            if b >= a * 0.99)
        assert saturation >= 2
        # Re-run: every point is a cache hit with identical numbers.
        space2 = SweepSpace.grid(
            SMALL_CHIP, resnet18(), {"chips": [1, 2, 3, 4]},
            series=[("CIM-MLC", CompilerOptions())])
        second = SweepRunner(cache_dir=str(tmp_path)).run(space2)
        assert second.all_cached
        assert [r.summary["steady_state_interval"] for r in second] \
            == intervals
        sat2 = next(
            i + 1 for i, (a, b) in enumerate(zip(intervals, intervals[1:]))
            if b >= a * 0.99)
        assert sat2 == saturation

    def test_multichip_fingerprint_depends_on_scale_fields(self):
        from repro.explore import SweepPoint
        from repro.sched import CompilerOptions

        graph = get_model("mlp")
        base = SweepPoint("p", "s", functional_testbed(), graph,
                          CompilerOptions(), chips=2)
        other = SweepPoint("p", "s", functional_testbed(), graph,
                           CompilerOptions(), chips=3)
        slower = SweepPoint("p", "s", functional_testbed(), graph,
                            CompilerOptions(), chips=2, link_bandwidth=8.0)
        single = SweepPoint("p", "s", functional_testbed(), graph,
                            CompilerOptions())
        prints = {p.fingerprint()
                  for p in (base, other, slower, single)}
        assert len(prints) == 4

    def test_link_axis_without_chips_axis_rejected(self):
        """Reproduced-bug guard: a link_bw sweep without a chips axis
        would silently evaluate identical single-chip points."""
        from repro.errors import ArchitectureError

        with pytest.raises(ArchitectureError, match="add a chips axis"):
            SweepSpace.grid(functional_testbed(), get_model("mlp"),
                            {"link_bw": [8, 512]}, series=[("CG", None)])

    def test_bad_scale_axis_values_rejected_eagerly(self):
        """chips=0 / negative bandwidth / unknown topology fail at grid
        construction with clean errors, not tracebacks mid-sweep."""
        from repro.errors import ArchitectureError

        graph = get_model("mlp")
        chip = functional_testbed()
        with pytest.raises(ArchitectureError, match="chips must be >= 1"):
            SweepSpace.grid(chip, graph, {"chips": [0, 1]})
        with pytest.raises(ArchitectureError, match="link_bw must be"):
            SweepSpace.grid(chip, graph,
                            {"chips": [2], "link_bw": [-8]})
        with pytest.raises(ArchitectureError, match="unknown chip topology"):
            SweepSpace.grid(chip, graph,
                            {"chips": [2], "topology": ["torus"]})

    def test_link_bw_axis(self):
        space = SweepSpace.grid(
            functional_testbed(), get_model("mlp"),
            {"chips": [2], "link_bw": [8, 512]},
            series=[("CG", None)])
        labels = [p.label for p in space]
        assert labels == ["chips=2 link_bw=8", "chips=2 link_bw=512"]
        results = SweepRunner().run(space)
        slow, fast = [r.summary for r in results]
        assert max(slow["scale"]["link_intervals"]) > \
            max(fast["scale"]["link_intervals"])


# ---------------------------------------------------------------------------
# Serving integration: tenants spanning chips
# ---------------------------------------------------------------------------


class TestServeSharded:
    def test_plan_sharded_disjoint_chip_blocks(self):
        specs = [TenantSpec("lenet", "lenet", weight=2.0),
                 TenantSpec("mlp", "mlp", weight=1.0)]
        system = MultiChipSystem(functional_testbed(), 4)
        plan = plan_sharded(system, specs)
        assert plan.mode == "sharded" and not plan.shared_executor
        chips = [c for t in plan.tenants for c in t.cores]
        assert len(chips) == len(set(chips))
        assert len(chips) == system.num_chips
        for t in plan.tenants:
            assert t.service.switch_cycles == 0.0
            assert t.service.interval_cycles <= t.service.latency_cycles

    def test_sharded_plan_serves_a_trace(self):
        specs = [TenantSpec("lenet", "lenet"), TenantSpec("mlp", "mlp")]
        system = MultiChipSystem(functional_testbed(), 4)
        plan = plan_sharded(system, specs)
        trace = poisson_trace(specs, rate=2e-4, num_requests=60, seed=1)
        report = simulate(plan, trace)
        assert report.completed == 60
        assert report.switch_cycles == 0.0

    def test_floors_exceed_chip_budget(self):
        small = functional_testbed().with_cores(12)
        specs = [TenantSpec("lenet", "lenet"), TenantSpec("mlp", "mlp")]
        with pytest.raises(CapacityError):
            plan_sharded(MultiChipSystem(small, 2), specs)


# ---------------------------------------------------------------------------
# Reports
# ---------------------------------------------------------------------------


class TestReports:
    def test_tables_and_dict(self):
        plan = shard(resnet18(), MultiChipSystem(SMALL_CHIP, 2, link=LINK))
        table = placement_table(plan)
        assert "chip 0" in table and "chip 1" in table
        links = link_table(plan)
        assert "->" in links
        summary = pipeline_summary(plan)
        assert "steady-state interval" in summary
        doc = plan.to_dict()
        assert len(doc["stages"]) == 2
        assert doc["pipeline"]["throughput"] == plan.report.throughput
        assert doc["system"]["num_chips"] == 2
        assert all(l["bits"] > 0 for l in doc["links"])

    def test_placement_annotated_with_io_anchor(self):
        plan = shard(resnet18(), MultiChipSystem(SMALL_CHIP, 2, link=LINK))
        for sched in plan.schedules:
            placed = [sched.graph.node(n).annotations.get("cores_placed")
                      for seg in sched.segments for n in seg
                      if sched.decision(n).profile.is_cim]
            assert all(p for p in placed)
