"""Model zoo: structural ground truth for the benchmark networks."""

import pytest

from repro.models import (
    conv_relu_example,
    lenet,
    mlp,
    residual_toy,
    resnet,
    resnet18,
    resnet50,
    tiny_conv,
    vgg,
    vgg7,
    vgg16,
    vit,
    vit_base,
)


class TestVGG:
    def test_vgg16_conv_count(self):
        g = vgg16()
        convs = [n for n in g.nodes if n.op_type == "Conv"]
        assert len(convs) == 13
        gemms = [n for n in g.nodes if n.op_type == "Gemm"]
        assert len(gemms) == 3

    def test_vgg16_parameter_count(self):
        # ~138M params at ImageNet scale (known figure).
        g = vgg16()
        params = g.total_weight_bits() // 8
        assert 130e6 < params < 140e6

    def test_vgg7_is_cifar_scale(self):
        g = vgg7()
        assert g.tensors["input"].shape == (1, 3, 32, 32)
        convs = [n for n in g.nodes if n.op_type == "Conv"]
        assert len(convs) == 6

    def test_unknown_depth_rejected(self):
        with pytest.raises(ValueError):
            vgg(15)

    def test_output_is_classifier(self):
        g = vgg16(num_classes=10)
        assert g.tensors[g.outputs[0]].shape == (1, 10)


class TestResNet:
    @pytest.mark.parametrize("depth,expected_convs", [
        (18, 20), (34, 36), (50, 53), (101, 104),
    ])
    def test_conv_counts(self, depth, expected_convs):
        g = resnet(depth)
        convs = [n for n in g.nodes if n.op_type == "Conv"]
        assert len(convs) == expected_convs

    def test_resnet18_parameter_count(self):
        params = resnet18().total_weight_bits() // 8
        assert 11e6 < params < 12.5e6   # ~11.7M known figure

    def test_resnet50_parameter_count(self):
        params = resnet50().total_weight_bits() // 8
        assert 23e6 < params < 27e6     # ~25.5M known figure

    def test_residual_adds_present(self):
        g = resnet18()
        adds = [n for n in g.nodes if n.op_type == "Add"]
        assert len(adds) == 8           # two blocks per stage, four stages

    def test_final_shape(self):
        g = resnet18()
        assert g.tensors[g.outputs[0]].shape == (1, 1000)

    def test_unknown_depth_rejected(self):
        with pytest.raises(ValueError):
            resnet(99)


class TestViT:
    def test_vit_base_dimensions(self):
        g = vit_base()
        qkv = g.node("block0_attn_qkv")
        assert g.weight_matrix(qkv) == (768, 2304, 8)
        # 197 tokens (14x14 patches + class token)
        assert g.num_mvms(qkv) == 197

    def test_vit_attention_matmuls_are_digital(self):
        g = vit_base()
        scores = g.node("block0_attn_scores")
        assert not g.is_cim_supported(scores)

    def test_vit_base_parameter_count(self):
        params = vit_base().total_weight_bits() // 8
        assert 80e6 < params < 90e6     # ~86M known figure

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError):
            vit("giant")

    def test_layer_count_scales(self):
        tiny = vit("tiny")
        base = vit("base")
        assert len(base.nodes) == len(tiny.nodes)  # same depth (12 blocks)
        large = vit("large")
        assert len(large.nodes) > len(base.nodes)


class TestSmallNets:
    def test_conv_relu_matches_paper_example(self):
        g = conv_relu_example()
        conv = g.node("conv")
        assert g.weight_matrix(conv) == (27, 32, 8)
        assert g.num_mvms(conv) == 1024          # 32x32 windows
        assert g.tensors[g.outputs[0]].shape == (1, 32, 32, 32)

    @pytest.mark.parametrize("factory", [tiny_conv, mlp, lenet, residual_toy])
    def test_small_nets_validate(self, factory):
        g = factory()
        g.validate()
        assert len(g.cim_nodes()) >= 1

    def test_lenet_structure(self):
        g = lenet()
        assert len([n for n in g.nodes if n.op_type == "Conv"]) == 2
        assert len([n for n in g.nodes if n.op_type == "Gemm"]) == 3
