"""TensorSpec: validation and derived quantities."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ShapeError
from repro.graph import TensorSpec


class TestValidation:
    def test_empty_name_rejected(self):
        with pytest.raises(ShapeError):
            TensorSpec("", (1, 2))

    def test_zero_dimension_rejected(self):
        with pytest.raises(ShapeError):
            TensorSpec("x", (1, 0, 3))

    def test_negative_dimension_rejected(self):
        with pytest.raises(ShapeError):
            TensorSpec("x", (1, -2))

    def test_non_integer_dimension_rejected(self):
        with pytest.raises(ShapeError):
            TensorSpec("x", (1, 2.5))

    def test_zero_bits_rejected(self):
        with pytest.raises(ShapeError):
            TensorSpec("x", (4,), bits=0)

    def test_scalar_shape_allowed(self):
        assert TensorSpec("x", ()).numel == 1


class TestDerived:
    def test_numel(self):
        assert TensorSpec("x", (2, 3, 4)).numel == 24

    def test_rank(self):
        assert TensorSpec("x", (1, 3, 32, 32)).rank == 4

    def test_size_bits(self):
        assert TensorSpec("x", (10,), bits=8).size_bits == 80

    def test_size_bytes_rounds_up(self):
        assert TensorSpec("x", (3,), bits=3).size_bytes == 2  # 9 bits -> 2B

    def test_with_shape_preserves_bits_and_kind(self):
        w = TensorSpec("w", (4, 4), bits=4, is_weight=True)
        v = w.with_shape((2, 8))
        assert v.shape == (2, 8)
        assert v.bits == 4
        assert v.is_weight

    def test_equality_ignores_weight_flag(self):
        # is_weight is metadata (compare=False); specs with the same
        # name/shape/bits compare equal.
        assert TensorSpec("x", (4,)) == TensorSpec("x", (4,), is_weight=True)


@given(shape=st.lists(st.integers(1, 16), min_size=1, max_size=4),
       bits=st.integers(1, 16))
def test_size_bits_matches_product(shape, bits):
    spec = TensorSpec("t", tuple(shape), bits)
    expected = bits
    for d in shape:
        expected *= d
    assert spec.size_bits == expected
    assert spec.size_bytes == (expected + 7) // 8
