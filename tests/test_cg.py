"""CG-grained optimization: duplication searches, balancing, segmentation.

The duplication searches are verified against exhaustive brute force on
small synthetic instances (hypothesis generates them), which is the ground
truth the paper's dynamic-programming search would also find.
"""

import itertools
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import isaac_baseline
from repro.errors import CapacityError
from repro.models import conv_relu_example, resnet18, tiny_conv
from repro.sched import (
    CostModel,
    duplicate_min_bottleneck,
    duplicate_min_total,
    schedule_cg,
    segment_graph,
)
from repro.sched.costs import OpProfile


def make_profile(name, num_mvms, mvm_cycles, cores=1):
    """Synthetic CIM profile with exact latency num_mvms/d * mvm_cycles."""
    return OpProfile(
        name=name, op_type="Conv", is_cim=True,
        num_mvms=num_mvms, vxb=None, n_xb=cores, cores_per_replica=cores,
        mvm_cycles_base=mvm_cycles, row_waves=1, input_passes=mvm_cycles,
        alu_cycles=0.0, mov_cycles=0.0, weight_bits=1, in_bits=1, out_bits=1,
        fill_fraction=0.1, max_useful_dup=num_mvms,
    )


def brute_force(profiles, budget, objective):
    """Exhaustive search over all duplication vectors within budget."""
    best = None
    ranges = [range(1, budget // p.cores_per_replica + 1) for p in profiles]
    for combo in itertools.product(*ranges):
        cost = sum(d * p.cores_per_replica for d, p in zip(combo, profiles))
        if cost > budget:
            continue
        value = objective([p.latency(d) for p, d in zip(profiles, combo)])
        if best is None or value < best:
            best = value
    return best


small_instances = st.lists(
    st.tuples(st.integers(1, 30),     # num_mvms
              st.integers(1, 20),     # mvm_cycles
              st.integers(1, 3)),     # cores per replica
    min_size=1, max_size=3,
)


class TestDuplicationOptimality:
    @settings(max_examples=30, deadline=None)
    @given(instance=small_instances, budget=st.integers(3, 10))
    def test_min_total_matches_brute_force(self, instance, budget):
        profiles = [make_profile(f"op{i}", *params)
                    for i, params in enumerate(instance)]
        if sum(p.cores_per_replica for p in profiles) > budget:
            return  # infeasible instance; covered by the capacity test
        dups = duplicate_min_total(profiles, budget)
        mine = sum(p.latency(dups[p.name]) for p in profiles)
        best = brute_force(profiles, budget, sum)
        assert mine == pytest.approx(best)

    @settings(max_examples=30, deadline=None)
    @given(instance=small_instances, budget=st.integers(3, 10))
    def test_min_bottleneck_matches_brute_force(self, instance, budget):
        profiles = [make_profile(f"op{i}", *params)
                    for i, params in enumerate(instance)]
        if sum(p.cores_per_replica for p in profiles) > budget:
            return
        dups = duplicate_min_bottleneck(profiles, budget)
        mine = max(p.latency(dups[p.name]) for p in profiles)
        best = brute_force(profiles, budget, max)
        assert mine == pytest.approx(best)

    def test_budget_respected(self):
        profiles = [make_profile("a", 100, 10), make_profile("b", 50, 10)]
        for search in (duplicate_min_total, duplicate_min_bottleneck):
            dups = search(profiles, 7)
            assert sum(dups.values()) <= 7

    def test_infeasible_raises(self):
        profiles = [make_profile("a", 10, 10, cores=5)]
        with pytest.raises(CapacityError):
            duplicate_min_total(profiles, 4)
        with pytest.raises(CapacityError):
            duplicate_min_bottleneck(profiles, 4)

    def test_heavy_op_gets_more_replicas(self):
        profiles = [make_profile("heavy", 1000, 10),
                    make_profile("light", 10, 10)]
        dups = duplicate_min_bottleneck(profiles, 20)
        assert dups["heavy"] > dups["light"]

    def test_digital_ops_ignored(self):
        digital = OpProfile(
            name="relu", op_type="Relu", is_cim=False, num_mvms=0,
            vxb=None, n_xb=0, cores_per_replica=0, mvm_cycles_base=0,
            row_waves=0, input_passes=0, alu_cycles=5.0, mov_cycles=0.0,
            weight_bits=0, in_bits=1, out_bits=1, fill_fraction=1.0,
            max_useful_dup=1)
        dups = duplicate_min_total([digital, make_profile("c", 8, 4)], 8)
        assert dups["relu"] == 1


class TestSegmentation:
    def test_single_segment_when_fits(self):
        arch = isaac_baseline()
        graph = resnet18()
        profiles = CostModel(arch).profiles(graph)
        segments = segment_graph(graph, profiles, arch)
        assert len(segments) == 1
        assert sum(len(s) for s in segments) == len(graph.nodes)

    def test_multi_segment_when_constrained(self):
        arch = isaac_baseline().with_cores(8)
        graph = resnet18()
        profiles = CostModel(arch).profiles(graph)
        segments = segment_graph(graph, profiles, arch)
        assert len(segments) > 1
        # Segments partition the topological order exactly.
        flat = [n for seg in segments for n in seg]
        assert flat == [n.name for n in graph.topological()]

    def test_every_segment_fits(self):
        arch = isaac_baseline().with_cores(8)
        graph = resnet18()
        sched = schedule_cg(graph, arch)
        sched.validate_resources()  # raises on violation


class TestScheduleCG:
    def test_annotations_written(self):
        graph = conv_relu_example()
        sched = schedule_cg(graph, isaac_baseline())
        conv = graph.node("conv")
        assert conv.annotations["duplication"] == \
            sched.decision("conv").dup_cg
        assert "segment" in conv.annotations

    def test_duplicate_false_keeps_one_replica(self):
        sched = schedule_cg(tiny_conv(), isaac_baseline(), duplicate=False)
        assert all(d.dup_cg == 1 for d in sched.decisions.values())

    def test_pipeline_objective_differs_from_total(self):
        graph = resnet18()
        arch = isaac_baseline()
        pipe = schedule_cg(graph, arch, pipelined=True)
        total = schedule_cg(graph, arch, pipelined=False)
        # The two objectives allocate differently on a real network.
        assert any(
            pipe.decision(n.name).dup_cg != total.decision(n.name).dup_cg
            for n in graph.cim_nodes())
