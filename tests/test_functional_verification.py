"""Section 4.1 verification: compiled flows == reference executor, exactly.

The paper validates its functional simulator against PyTorch; here every
(network, computing-mode) pair is compiled to a meta-operator flow, executed
on the machine model, and compared bit-for-bit against the numpy reference.
"""

import numpy as np
import pytest

from repro.arch import ComputingMode, functional_testbed, table2_example
from repro.models import (
    conv_relu_example,
    lenet,
    mlp,
    residual_toy,
    tiny_conv,
)
from repro.mops import FlowValidator
from repro.quant import random_input, random_weights
from repro.sched import CIMMLC
from repro.sched.lowering import lower_to_flow
from repro.sim.functional import CIMMachine
from repro.sim.reference import ReferenceExecutor

MODES = (ComputingMode.CM, ComputingMode.XBM, ComputingMode.WLM)


def run_both(graph, arch, seed=3):
    weights = random_weights(graph, seed=seed, low=-4, high=4)
    inputs = random_input(graph, seed=seed + 100)
    schedule = CIMMLC(arch).schedule(graph)
    program = lower_to_flow(schedule, weights)
    FlowValidator(arch).validate(program.flow)   # flows are always legal
    machine = CIMMachine(arch)
    machine.run(program, inputs)
    reference = ReferenceExecutor(graph, weights).run(inputs)
    return machine, program, reference


@pytest.mark.parametrize("mode", MODES, ids=lambda m: m.value)
@pytest.mark.parametrize("factory",
                         [tiny_conv, mlp, residual_toy, lenet],
                         ids=lambda f: f.__name__)
def test_flow_matches_reference(mode, factory):
    graph = factory()
    machine, program, reference = run_both(graph, functional_testbed(mode))
    for out in graph.outputs:
        got = machine.read_tensor(program, out, reference[out].shape)
        assert np.array_equal(got, reference[out].astype(np.float64)), \
            f"{graph.name} diverges in {mode}"


@pytest.mark.parametrize("mode", MODES, ids=lambda m: m.value)
def test_paper_example_on_table2(mode):
    """The Section 3.4 Conv-ReLU walkthrough on the Table 2 architecture."""
    graph = conv_relu_example()
    machine, program, reference = run_both(graph, table2_example(mode))
    out = graph.outputs[0]
    got = machine.read_tensor(program, out, reference[out].shape)
    assert np.array_equal(got, reference[out].astype(np.float64))


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_verification_across_seeds(seed):
    """Different random weights/inputs — exactness is not a coincidence."""
    graph = tiny_conv()
    arch = functional_testbed(ComputingMode.WLM)
    machine, program, reference = run_both(graph, arch, seed=seed)
    out = graph.outputs[0]
    got = machine.read_tensor(program, out, reference[out].shape)
    assert np.array_equal(got, reference[out].astype(np.float64))


def test_intermediate_tensors_also_exact():
    """Not just the output: every placed activation tensor matches."""
    graph = tiny_conv()
    machine, program, reference = run_both(
        graph, functional_testbed(ComputingMode.XBM))
    for name, offset in program.tensor_offsets.items():
        spec = graph.tensors.get(name)
        if spec is None or spec.is_weight or name not in reference:
            continue
        got = machine.read_tensor(program, name, spec.shape)
        assert np.array_equal(got, reference[name].astype(np.float64)), name


def test_wlm_uses_row_operators():
    from repro.mops import ReadRow, ReadXb, WriteRow

    graph = tiny_conv()
    weights = random_weights(graph, seed=3, low=-4, high=4)
    arch = functional_testbed(ComputingMode.WLM)
    program = lower_to_flow(CIMMLC(arch).schedule(graph), weights)
    assert program.flow.count(ReadRow) > 0
    assert program.flow.count(WriteRow) > 0
    assert program.flow.count(ReadXb) == 0


def test_wlm_activations_respect_parallel_row():
    from repro.mops import ReadRow

    graph = tiny_conv()
    weights = random_weights(graph, seed=3, low=-4, high=4)
    arch = functional_testbed(ComputingMode.WLM)
    program = lower_to_flow(CIMMLC(arch).schedule(graph), weights)
    pr = arch.xb.effective_parallel_row
    for op in program.flow.leaves():
        if isinstance(op, ReadRow):
            assert op.length <= pr
