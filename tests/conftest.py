"""Shared fixtures for the test suite."""

import pytest

from repro.arch import (
    ComputingMode,
    functional_testbed,
    isaac_baseline,
    table2_example,
)
from repro.models import conv_relu_example, mlp, residual_toy, tiny_conv


@pytest.fixture
def baseline_arch():
    """The Table 3 ISAAC-like baseline (WLM mode)."""
    return isaac_baseline()


@pytest.fixture
def toy_arch():
    """The Table 2 walkthrough architecture (WLM mode)."""
    return table2_example()


@pytest.fixture
def testbed_xbm():
    """Roomy functional-simulation chip in XBM mode."""
    return functional_testbed(ComputingMode.XBM)


@pytest.fixture
def tiny_graph():
    return tiny_conv()


@pytest.fixture
def mlp_graph():
    return mlp()


@pytest.fixture
def residual_graph():
    return residual_toy()


@pytest.fixture
def conv_relu_graph():
    return conv_relu_example()
