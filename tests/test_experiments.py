"""Experiment drivers: smoke + shape checks on reduced workloads.

The full paper-scale experiments run from ``benchmarks/``; here each driver
executes on small inputs and the paper's qualitative claims (orderings,
directions) are asserted.
"""

import pytest

from repro.experiments import (
    ExperimentResult,
    fig16_codegen,
    fig16_stats,
    fig20c_jain,
    fig20d_poly,
    fig22a_cores,
    fig22d_parallel_row,
    table1,
)
from repro.models import tiny_conv, vgg7, vit_tiny


class TestCommon:
    def test_result_table_and_lookup(self):
        result = ExperimentResult("X", "demo")
        result.add("row", 2.0, 3.0)
        assert "row" in result.table()
        assert result.row("row").paper == 3.0
        with pytest.raises(KeyError):
            result.row("nope")
        assert result.as_dict() == {"row": 2.0}


class TestFig16:
    def test_listings_per_mode(self):
        listings = fig16_codegen(max_lines=10)
        assert set(listings) == {"CM", "XBM", "WLM"}
        assert "cim.readcore" in listings["CM"]
        assert "cim.readxb" in listings["XBM"] or \
            "cim.writexb" in listings["XBM"]
        assert "cim.writerow" in listings["WLM"]

    def test_stats_ordering(self):
        stats = fig16_stats().as_dict()
        # Finer interfaces need more meta-operators.
        assert stats["CM flow statements"] < stats["XBM flow statements"] \
            <= stats["WLM flow statements"]


class TestFig20:
    def test_jain_level_ordering(self):
        result = fig20c_jain(vgg7())
        cg = result.row("CG-grained").measured
        mvm = result.row("CG+MVM-grained").measured
        vvm = result.row("CG+MVM+VVM-grained").measured
        assert 1.0 <= cg <= mvm <= vvm

    def test_poly_comparison_ordering(self):
        result = fig20d_poly(tiny_conv())
        base = result.row("w/o optimization (cycles)").measured
        poly = result.row("Poly-Schedule (cycles)").measured
        ours = result.row("CIM-MLC (cycles)").measured
        assert ours <= poly <= base


class TestFig22:
    def test_more_cores_never_slower(self):
        result = fig22a_cores(core_numbers=(64, 256), graph=vit_tiny())
        assert result.row("cores=256 CG").measured >= \
            result.row("cores=64 CG").measured

    def test_vvm_recovers_low_parallel_rows(self):
        result = fig22d_parallel_row(rows=(64, 8), graph=vit_tiny())
        # At 8 parallel rows the VVM remap must beat plain MVM scheduling.
        assert result.row("pr=8 CG+MVM+VVM").measured >= \
            result.row("pr=8 CG+MVM").measured


class TestTable1:
    def test_all_capabilities_execute(self):
        result = table1()
        for row in result.rows:
            assert row.measured >= 1.0
