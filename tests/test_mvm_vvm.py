"""MVM-grained (Eq. 1, staggering) and VVM-grained (remap) optimization."""

import math

import pytest

from repro.arch import ComputingMode, isaac_baseline, jain2021, jia2021
from repro.errors import ModeError
from repro.models import conv_relu_example, resnet18, vgg7
from repro.sched import (
    CIMMLC,
    CompilerOptions,
    CostModel,
    refine_duplication,
    schedule_cg,
    schedule_mvm,
    schedule_vvm,
)
from repro.sched.schedule import OpDecision
from repro.sched.vvm import remap_plan, seq_remap_waves


class TestEq1Refinement:
    def test_recovers_stranded_crossbars(self):
        """A replica needing 9 crossbars strands 7 per 16-crossbar core;
        4 CG replicas (4 cores, 64 crossbars) refine to 7 MVM replicas."""
        profiles = CostModel(isaac_baseline()).profiles(conv_relu_example())
        p = profiles["conv"]
        # Build a synthetic profile with n_xb = 9 for the arithmetic check.
        from dataclasses import replace

        p9 = replace(p, n_xb=9, cores_per_replica=1)
        decision = OpDecision(profile=p9, dup_cg=4)
        refined = refine_duplication(decision, isaac_baseline())
        assert refined == (4 * 16) // 9   # = 7

    def test_never_below_cg_duplication(self):
        profiles = CostModel(isaac_baseline()).profiles(resnet18())
        for name, p in profiles.items():
            if not p.is_cim:
                continue
            d = OpDecision(profile=p, dup_cg=3)
            assert refine_duplication(d, isaac_baseline()) >= 3

    def test_capped_by_useful_duplication(self):
        from dataclasses import replace

        profiles = CostModel(isaac_baseline()).profiles(conv_relu_example())
        p = replace(profiles["conv"], n_xb=1, cores_per_replica=1,
                    num_mvms=2, max_useful_dup=2)
        decision = OpDecision(profile=p, dup_cg=1)
        assert refine_duplication(decision, isaac_baseline()) == 2


class TestScheduleMVM:
    def test_requires_xbm_or_wlm(self):
        cg = schedule_cg(conv_relu_example(), jia2021())
        with pytest.raises(ModeError):
            schedule_mvm(cg)

    def test_stagger_reduces_active_crossbars(self):
        graph = resnet18()
        arch = isaac_baseline()
        cg = schedule_cg(graph, arch)
        staggered = schedule_mvm(cg, stagger=True)
        unstaggered = schedule_mvm(cg, stagger=False)
        for node in graph.cim_nodes():
            a = staggered.decision(node.name).active_crossbars()
            b = unstaggered.decision(node.name).active_crossbars()
            assert a <= b

    def test_refined_duplication_never_slower(self):
        graph = resnet18()
        arch = isaac_baseline()
        cg = schedule_cg(graph, arch)
        mvm = schedule_mvm(cg)
        for node in graph.cim_nodes():
            assert mvm.decision(node.name).latency() <= \
                cg.decision(node.name).latency() + 1e-9

    def test_levels_recorded(self):
        cg = schedule_cg(conv_relu_example(), isaac_baseline())
        mvm = schedule_mvm(cg)
        assert tuple(mvm.levels) == ("CG", "MVM")


class TestScheduleVVM:
    def test_requires_wlm(self):
        from repro.arch import puma

        cg = schedule_cg(conv_relu_example(), puma())
        mvm = schedule_mvm(cg)
        with pytest.raises(ModeError):
            schedule_vvm(mvm)

    def test_vvm_never_slower_than_mvm(self):
        graph = resnet18()
        arch = isaac_baseline()
        mvm = schedule_mvm(schedule_cg(graph, arch))
        vvm = schedule_vvm(mvm)
        for node in graph.cim_nodes():
            assert vvm.decision(node.name).latency() <= \
                mvm.decision(node.name).latency() + 1e-9

    def test_remap_plan_respects_budget(self):
        graph = resnet18()
        arch = isaac_baseline()
        mvm = schedule_mvm(schedule_cg(graph, arch))
        for node in graph.cim_nodes():
            d = mvm.decision(node.name)
            p = d.profile
            if p.vxb is None or p.seq_passes > 1:
                continue
            dup, w = remap_plan(d, arch)
            strip = p.vxb.v_cols * p.vxb.slices_per_xb
            used = dup * (p.n_xb + (w - 1) * strip)
            total = p.cores_per_replica * d.dup_cg * arch.core.xb_number
            assert used <= total

    def test_seq_remap_only_for_multiplexed_ops(self):
        graph = resnet18()
        arch = isaac_baseline()
        mvm = schedule_mvm(schedule_cg(graph, arch))
        for node in graph.cim_nodes():
            d = mvm.decision(node.name)
            if d.profile.seq_passes == 1:
                assert seq_remap_waves(d, arch) is None

    def test_seq_remap_on_starved_chip(self):
        """On Jain's 8-crossbar macro every VGG7 conv time-multiplexes and
        the remap must strictly improve at least one operator."""
        graph = vgg7()
        arch = jain2021()
        mvm = schedule_mvm(schedule_cg(graph, arch))
        improved = 0
        for node in graph.cim_nodes():
            d = mvm.decision(node.name)
            waves = seq_remap_waves(d, arch)
            if waves is not None:
                assert waves < d.profile.seq_passes * d.profile.row_waves
                improved += 1
        assert improved >= 1

    def test_full_stack_ordering(self):
        """Adding levels never hurts end-to-end latency."""
        graph = resnet18()
        arch = isaac_baseline()
        cycles = {}
        for level in ("CG", "MVM", "VVM"):
            run = CIMMLC(arch, CompilerOptions(max_level=level)).compile(graph)
            cycles[level] = run.total_cycles
        assert cycles["MVM"] <= cycles["CG"] * (1 + 1e-9)
        assert cycles["VVM"] <= cycles["MVM"] * (1 + 1e-9)
