"""Reference executor: hand-checked kernels and structural behaviour."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.graph import GraphBuilder
from repro.models import residual_toy, tiny_conv, vit_tiny
from repro.quant import random_input, random_weights
from repro.sim.reference import ReferenceExecutor, conv_windows


class TestConvWindows:
    def test_identity_window(self):
        x = np.arange(16).reshape(1, 1, 4, 4)
        windows = conv_windows(x, (1, 1), (1, 1), (0, 0))
        assert windows.shape == (16, 1)
        assert np.array_equal(windows.reshape(-1), x.reshape(-1))

    def test_padding_zeros(self):
        x = np.ones((1, 1, 2, 2))
        windows = conv_windows(x, (3, 3), (1, 1), (1, 1))
        assert windows.shape == (4, 9)
        # corner window touches 4 real pixels, 5 padded zeros
        assert windows[0].sum() == 4

    def test_channel_major_ordering(self):
        """Window layout is (channel, kh, kw) flattened — the contract
        shared with the lowering."""
        x = np.stack([np.zeros((2, 2)), np.ones((2, 2))])[None]
        windows = conv_windows(x, (2, 2), (1, 1), (0, 0))
        assert np.array_equal(windows[0], [0, 0, 0, 0, 1, 1, 1, 1])


class TestKernels:
    def test_conv_matches_manual(self):
        b = GraphBuilder("g")
        x = b.input("x", (1, 1, 3, 3))
        y = b.conv(x, 1, kernel=3, name="c")
        g = b.build([y])
        w = {"c_w": np.ones((1, 1, 3, 3), dtype=np.int64)}
        data = np.arange(9).reshape(1, 1, 3, 3)
        out = ReferenceExecutor(g, w).run({"x": data})[g.outputs[0]]
        assert out.reshape(-1)[0] == 36     # sum of 0..8

    def test_gemm_with_bias(self):
        b = GraphBuilder("g")
        x = b.input("x", (1, 3))
        y = b.gemm(x, 2, bias=True, name="fc")
        g = b.build([y])
        w = {"fc_w": np.array([[1, 0, 0], [0, 1, 0]]),
             "fc_b": np.array([10, 20])}
        out = ReferenceExecutor(g, w).run(
            {"x": np.array([[1, 2, 3]])})[g.outputs[0]]
        assert np.array_equal(out, [[11, 22]])

    def test_maxpool(self):
        b = GraphBuilder("g")
        x = b.input("x", (1, 1, 4, 4))
        y = b.maxpool(x, kernel=2, stride=2, name="p")
        g = b.build([y])
        data = np.arange(16).reshape(1, 1, 4, 4)
        out = ReferenceExecutor(g, {}).run({"x": data})[g.outputs[0]]
        assert np.array_equal(out.reshape(-1), [5, 7, 13, 15])

    def test_relu_and_add(self):
        g = residual_toy()
        w = random_weights(g, seed=0, low=-2, high=2)
        out = ReferenceExecutor(g, w).run(random_input(g))
        final = out[g.outputs[0]]
        assert final.min() >= 0              # ends with ReLU

    def test_softmax_rows_sum_to_one(self):
        b = GraphBuilder("g")
        x = b.input("x", (2, 5))
        y = b.softmax(x, name="s")
        g = b.build([y])
        out = ReferenceExecutor(g, {}).run(
            {"x": np.arange(10).reshape(2, 5)})[g.outputs[0]]
        assert np.allclose(out.sum(axis=-1), 1.0)

    def test_unknown_op_rejected(self):
        b = GraphBuilder("g")
        x = b.input("x", (1, 4))
        y = b.node("Identity", [x], name="i")
        g = b.build([y])
        g.nodes[0].op_type = "Alien"
        with pytest.raises(SimulationError, match="no kernel"):
            ReferenceExecutor(g, {}).run({"x": np.zeros((1, 4))})

    def test_missing_output_detected(self):
        b = GraphBuilder("g")
        x = b.input("x", (1, 4))
        y = b.relu(x)
        g = b.build([y])
        g.outputs.append("phantom")
        with pytest.raises(SimulationError, match="never produced"):
            ReferenceExecutor(g, {}).run({"x": np.zeros((1, 4))})


class TestEndToEnd:
    def test_tiny_conv_shapes_match_inference(self):
        g = tiny_conv()
        w = random_weights(g, seed=1, low=-3, high=3)
        env = ReferenceExecutor(g, w).run(random_input(g))
        for name, spec in g.tensors.items():
            if name in env and not spec.is_weight:
                assert env[name].shape == spec.shape

    def test_vit_runs_end_to_end(self):
        g = vit_tiny()
        w = random_weights(g, seed=1, low=-1, high=1)
        env = ReferenceExecutor(g, w).run(random_input(g))
        assert env[g.outputs[0]].shape == (1, 1000)
