"""Vectorized trace generation: bit-identical to the scalar references.

The vectorized generators in :mod:`repro.serve.workload` batch their
draws through numpy but must reproduce the original scalar algorithms
*bit for bit* — every arrival float, every tenant pick, in order.  These
tests compare against the retained ``_*_scalar`` twins across trace
kinds, sizes, and seeds, and pin absolute digests so an accidental
change to either side (or to numpy's RNG plumbing) fails loudly.
"""

import struct

import pytest

from repro.errors import ScheduleError
from repro.serve import TenantSpec, make_trace, trace_digest
from repro.serve.workload import (
    _bursty_trace_scalar,
    _diurnal_trace_scalar,
    _poisson_trace_scalar,
    bursty_trace,
    diurnal_bursty_trace,
    diurnal_trace,
    poisson_trace,
)

TENANTS = [TenantSpec("a", "mlp", 3.0), TenantSpec("b", "mlp", 1.0)]
SIZES = (0, 1, 7, 500)
SEEDS = (0, 1, 42)

#: (vectorized, scalar reference) per trace kind.
PAIRS = {
    "poisson": (poisson_trace, _poisson_trace_scalar),
    "bursty": (bursty_trace, _bursty_trace_scalar),
    "diurnal": (diurnal_trace, _diurnal_trace_scalar),
}


def bits(trace):
    """Exact byte image of a trace (distinguishes even -0.0 vs 0.0)."""
    return [(r.index, r.tenant, struct.pack("<d", r.arrival))
            for r in trace]


class TestBitIdentical:
    @pytest.mark.parametrize("kind", sorted(PAIRS))
    @pytest.mark.parametrize("n", SIZES)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_matches_scalar_reference(self, kind, n, seed):
        fast, ref = PAIRS[kind]
        assert bits(fast(TENANTS, 1e-4, n, seed=seed)) == \
            bits(ref(TENANTS, 1e-4, n, seed=seed))

    def test_bursty_custom_knobs(self):
        kw = dict(burst_factor=3.0, calm_factor=0.1,
                  mean_dwell_requests=5.0)
        assert bits(bursty_trace(TENANTS, 2e-4, 300, seed=9, **kw)) == \
            bits(_bursty_trace_scalar(TENANTS, 2e-4, 300, seed=9, **kw))

    def test_diurnal_custom_knobs(self):
        kw = dict(period=300_000.0, depth=0.95)
        assert bits(diurnal_trace(TENANTS, 2e-4, 300, seed=9, **kw)) == \
            bits(_diurnal_trace_scalar(TENANTS, 2e-4, 300, seed=9, **kw))

    def test_single_tenant(self):
        one = [TenantSpec("solo", "mlp")]
        for kind, (fast, ref) in PAIRS.items():
            assert bits(fast(one, 1e-4, 50)) == bits(ref(one, 1e-4, 50))


class TestPinnedDigests:
    """Absolute digests: the generators are a compatibility contract."""

    EXPECTED = {
        "poisson": "8c36fbefa679ae94",
        "bursty": "fd6c36eae333a6b1",
        "diurnal": "4ca21cc9ea9ddc59",
        "diurnal-bursty": "4d04233da3cb408f",
    }

    @pytest.mark.parametrize("kind", sorted(EXPECTED))
    def test_digest_pinned(self, kind):
        trace = make_trace(kind, TENANTS, rate=1e-4, num_requests=500,
                           seed=7)
        assert trace_digest(trace)[:16] == self.EXPECTED[kind]


class TestDiurnalBursty:
    """The fleet-scale MMPP-under-envelope kind (no scalar twin: it is
    new with the fleet subsystem, so its digest above is the pin)."""

    def test_shape_and_determinism(self):
        t1 = diurnal_bursty_trace(TENANTS, 1e-4, 400, seed=3)
        t2 = diurnal_bursty_trace(TENANTS, 1e-4, 400, seed=3)
        assert bits(t1) == bits(t2)
        assert len(t1) == 400
        assert [r.index for r in t1] == list(range(400))
        arrivals = [r.arrival for r in t1]
        assert arrivals == sorted(arrivals)
        assert all(r.tenant in ("a", "b") for r in t1)

    def test_seed_changes_trace(self):
        assert bits(diurnal_bursty_trace(TENANTS, 1e-4, 200, seed=0)) != \
            bits(diurnal_bursty_trace(TENANTS, 1e-4, 200, seed=1))

    def test_long_run_rate_near_nominal(self):
        trace = diurnal_bursty_trace(TENANTS, 1e-3, 20_000, seed=0)
        realized = len(trace) / trace[-1].arrival
        assert 0.8e-3 < realized < 1.25e-3

    def test_bad_knobs_rejected(self):
        with pytest.raises(ScheduleError):
            diurnal_bursty_trace(TENANTS, 1e-4, 10, depth=1.5)
        with pytest.raises(ScheduleError):
            diurnal_bursty_trace(TENANTS, 1e-4, 10, burst_factor=0.0)

    def test_make_trace_dispatch(self):
        via = make_trace("diurnal-bursty", TENANTS, 1e-4, 50, seed=5)
        direct = diurnal_bursty_trace(TENANTS, 1e-4, 50, seed=5)
        assert bits(via) == bits(direct)


class TestTraceDigest:
    def test_digest_distinguishes_fields(self):
        base = poisson_trace(TENANTS, 1e-4, 20, seed=0)
        other = poisson_trace(TENANTS, 1e-4, 20, seed=1)
        assert trace_digest(base) == trace_digest(list(base))
        assert trace_digest(base) != trace_digest(other)
        assert trace_digest([]) == trace_digest(())
