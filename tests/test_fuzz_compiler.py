"""Fuzzing: random graphs x random architectures through the whole stack.

Property: for any well-formed (graph, architecture) pair where the graph's
largest operator fits at least one core pass, the compiler produces a
schedule that (a) covers every node exactly once, (b) respects the core
budget per segment, (c) never slows down relative to the un-optimized
baseline, and (d) keeps per-level monotonicity.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import (
    CellType,
    ChipTier,
    CIMArchitecture,
    ComputingMode,
    CoreTier,
    CrossbarTier,
)
from repro.graph import GraphBuilder
from repro.sched import CIMMLC, CompilerOptions, no_optimization

arch_strategy = st.builds(
    lambda cores, xbs, rows, cols, pr_div, dac, cells, mode: CIMArchitecture(
        name="fuzz",
        chip=ChipTier(core_number=cores, alu_ops=256, l0_bw_bits=128),
        core=CoreTier(xb_number=xbs),
        xb=CrossbarTier(
            xb_size=(rows, cols),
            parallel_row=max(1, rows // pr_div),
            dac_bits=dac,
            adc_bits=8,
            cell_type=cells,
            cell_bits=2,
        ),
        mode=mode,
    ),
    cores=st.integers(2, 32),
    xbs=st.integers(1, 8),
    rows=st.sampled_from([16, 32, 64, 128]),
    cols=st.sampled_from([16, 32, 64, 128]),
    pr_div=st.sampled_from([1, 2, 4]),
    dac=st.sampled_from([1, 2, 8]),
    cells=st.sampled_from([CellType.SRAM, CellType.RERAM]),
    mode=st.sampled_from(list(ComputingMode)),
)


@st.composite
def graph_strategy(draw):
    b = GraphBuilder("fuzz")
    h = draw(st.sampled_from([6, 8, 12]))
    channels = draw(st.integers(1, 8))
    x = b.input("x", (1, channels, h, h))
    n_layers = draw(st.integers(1, 4))
    for i in range(n_layers):
        kind = draw(st.sampled_from(["conv", "relu", "pool"]))
        if kind == "conv":
            x = b.conv(x, draw(st.integers(1, 8)), kernel=3, padding=1,
                       name=f"conv{i}")
        elif kind == "relu":
            x = b.relu(x, name=f"relu{i}")
        else:
            spec = b._tensors[x]
            if spec.shape[2] >= 2:
                x = b.maxpool(x, kernel=2, stride=2, name=f"pool{i}")
    x = b.flatten(x)
    x = b.gemm(x, draw(st.integers(2, 10)), name="head")
    return b.build([x])


@settings(max_examples=40, deadline=None)
@given(arch=arch_strategy, graph=graph_strategy())
def test_compiler_on_random_inputs(arch, graph):
    baseline = no_optimization(graph, arch)
    result = CIMMLC(arch).compile(graph)

    # (a) complete node coverage
    scheduled = [n for seg in result.schedule.segments for n in seg]
    assert sorted(scheduled) == sorted(n.name for n in graph.nodes)
    # (b) resource validity
    result.schedule.validate_resources()
    # (c) never slower than no optimization
    assert result.total_cycles <= baseline.total_cycles * (1 + 1e-9)
    # (d) level monotonicity within what the mode exposes
    prev = None
    for level in arch.mode.optimization_levels:
        run = CIMMLC(arch, CompilerOptions(max_level=level)).compile(graph)
        if prev is not None:
            assert run.total_cycles <= prev * (1 + 1e-9)
        prev = run.total_cycles


@settings(max_examples=15, deadline=None)
@given(arch=arch_strategy, graph=graph_strategy())
def test_power_reports_well_formed(arch, graph):
    report = CIMMLC(arch).compile(graph).report
    assert 0 <= report.power.peak_active_crossbars <= arch.total_crossbars
    breakdown = report.power.breakdown()
    assert abs(sum(breakdown.values()) - 1.0) < 1e-9 or \
        sum(breakdown.values()) == 0.0
    assert report.throughput > 0
