"""Operator registry: shape inference and cost statistics per op type."""

import pytest

from repro.errors import ShapeError, UnknownOpError
from repro.graph import Node, TensorSpec, op_spec, register_op, registered_ops
from repro.graph.ops import OpSpec, conv_out_hw


def spec(name, shape, bits=8, weight=False):
    return TensorSpec(name, shape, bits, weight)


class TestConv:
    def _node(self, **attrs):
        return Node("c", "Conv", ["x", "w"], ["y"], attrs)

    def test_basic_shape(self):
        out = op_spec("Conv").infer_shapes(
            self._node(stride=1, padding=1),
            [spec("x", (1, 3, 32, 32)), spec("w", (32, 3, 3, 3), weight=True)])
        assert out == [(1, 32, 32, 32)]

    def test_stride_2(self):
        out = op_spec("Conv").infer_shapes(
            self._node(stride=2, padding=3),
            [spec("x", (1, 3, 224, 224)), spec("w", (64, 3, 7, 7))])
        assert out == [(1, 64, 112, 112)]

    def test_channel_mismatch_rejected(self):
        with pytest.raises(ShapeError, match="channels"):
            op_spec("Conv").infer_shapes(
                self._node(),
                [spec("x", (1, 4, 8, 8)), spec("w", (8, 3, 3, 3))])

    def test_window_larger_than_input_rejected(self):
        with pytest.raises(ShapeError):
            op_spec("Conv").infer_shapes(
                self._node(),
                [spec("x", (1, 3, 2, 2)), spec("w", (8, 3, 5, 5))])

    def test_missing_weight_rejected(self):
        with pytest.raises(ShapeError, match="weight"):
            op_spec("Conv").infer_shapes(
                self._node(), [spec("x", (1, 3, 8, 8))])

    def test_grouped_conv(self):
        node = Node("c", "Conv", ["x", "w"], ["y"], {"groups": 2})
        out = op_spec("Conv").infer_shapes(
            node, [spec("x", (1, 4, 8, 8)), spec("w", (8, 2, 3, 3))])
        assert out == [(1, 8, 6, 6)]
        # grouped weight matrix uses per-group input channels
        assert op_spec("Conv").weight_matrix(
            node, [spec("x", (1, 4, 8, 8)), spec("w", (8, 2, 3, 3))]) == \
            (2 * 3 * 3, 8, 8)

    def test_num_mvms_counts_groups(self):
        node = Node("c", "Conv", ["x", "w"], ["y"], {"groups": 2})
        inputs = [spec("x", (1, 4, 8, 8)), spec("w", (8, 2, 3, 3))]
        assert op_spec("Conv").num_mvms(node, inputs) == 6 * 6 * 2

    def test_bias_adds_alu_work(self):
        node = Node("c", "Conv", ["x", "w", "b"], ["y"], {})
        inputs = [spec("x", (1, 3, 8, 8)), spec("w", (4, 3, 3, 3)),
                  spec("b", (4,))]
        assert op_spec("Conv").alu_ops(node, inputs) == 4 * 6 * 6


class TestGemmAndMatMul:
    def test_gemm_3d_activation(self):
        node = Node("g", "Gemm", ["x", "w"], ["y"])
        out = op_spec("Gemm").infer_shapes(
            node, [spec("x", (1, 197, 768)), spec("w", (2304, 768))])
        assert out == [(1, 197, 2304)]
        assert op_spec("Gemm").num_mvms(
            node, [spec("x", (1, 197, 768)), spec("w", (2304, 768))]) == 197

    def test_gemm_feature_mismatch(self):
        with pytest.raises(ShapeError):
            op_spec("Gemm").infer_shapes(
                Node("g", "Gemm", ["x", "w"], ["y"]),
                [spec("x", (1, 10)), spec("w", (5, 11))])

    def test_matmul_batched(self):
        node = Node("m", "MatMul", ["a", "b"], ["y"])
        out = op_spec("MatMul").infer_shapes(
            node, [spec("a", (12, 197, 64)), spec("b", (12, 64, 197))])
        assert out == [(12, 197, 197)]

    def test_matmul_is_not_cim(self):
        assert not op_spec("MatMul").is_cim_supported
        assert op_spec("Gemm").is_cim_supported
        assert op_spec("Conv").is_cim_supported

    def test_matmul_bad_inner_dim(self):
        with pytest.raises(ShapeError):
            op_spec("MatMul").infer_shapes(
                Node("m", "MatMul", ["a", "b"], ["y"]),
                [spec("a", (2, 3)), spec("b", (4, 5))])


class TestPoolingAndShapeOps:
    def test_maxpool(self):
        node = Node("p", "MaxPool", ["x"], ["y"], {"kernel": 2, "stride": 2})
        out = op_spec("MaxPool").infer_shapes(node, [spec("x", (1, 8, 8, 8))])
        assert out == [(1, 8, 4, 4)]

    def test_global_pool(self):
        node = Node("p", "GlobalAveragePool", ["x"], ["y"])
        assert op_spec("GlobalAveragePool").infer_shapes(
            node, [spec("x", (1, 512, 7, 7))]) == [(1, 512, 1, 1)]

    def test_flatten(self):
        node = Node("f", "Flatten", ["x"], ["y"])
        assert op_spec("Flatten").infer_shapes(
            node, [spec("x", (2, 3, 4, 5))]) == [(2, 60)]

    def test_reshape_checks_numel(self):
        node = Node("r", "Reshape", ["x"], ["y"], {"shape": (2, 7)})
        with pytest.raises(ShapeError):
            op_spec("Reshape").infer_shapes(node, [spec("x", (3, 4))])

    def test_transpose_validates_perm(self):
        node = Node("t", "Transpose", ["x"], ["y"], {"perm": (0, 0, 1)})
        with pytest.raises(ShapeError):
            op_spec("Transpose").infer_shapes(node, [spec("x", (2, 3, 4))])

    def test_concat(self):
        node = Node("c", "Concat", ["a", "b"], ["y"], {"axis": 1})
        assert op_spec("Concat").infer_shapes(
            node, [spec("a", (1, 3)), spec("b", (1, 5))]) == [(1, 8)]

    def test_concat_dim_mismatch(self):
        node = Node("c", "Concat", ["a", "b"], ["y"], {"axis": 1})
        with pytest.raises(ShapeError):
            op_spec("Concat").infer_shapes(
                node, [spec("a", (1, 3)), spec("b", (2, 5))])

    def test_slice_bounds(self):
        node = Node("s", "Slice", ["x"], ["y"],
                    {"axis": 1, "start": 2, "end": 10})
        with pytest.raises(ShapeError):
            op_spec("Slice").infer_shapes(node, [spec("x", (1, 8))])

    def test_add_shape_mismatch(self):
        node = Node("a", "Add", ["p", "q"], ["y"])
        with pytest.raises(ShapeError):
            op_spec("Add").infer_shapes(
                node, [spec("p", (1, 3)), spec("q", (1, 4))])


class TestRegistry:
    def test_unknown_op(self):
        with pytest.raises(UnknownOpError):
            op_spec("Quux")

    def test_custom_registration(self):
        class DoubleSpec(OpSpec):
            pass

        register_op("DoubleTest", DoubleSpec())
        assert "DoubleTest" in registered_ops()
        assert isinstance(op_spec("DoubleTest"), DoubleSpec)

    def test_conv_out_hw_formula(self):
        assert conv_out_hw(32, 32, (3, 3), (1, 1), (1, 1)) == (32, 32)
        assert conv_out_hw(224, 224, (7, 7), (2, 2), (3, 3)) == (112, 112)

    def test_softmax_and_norm_alu_cost(self):
        x = [spec("x", (1, 16))]
        node = Node("s", "Softmax", ["x"], ["y"])
        assert op_spec("Softmax").alu_ops(node, x) == 64
        node = Node("n", "LayerNorm", ["x"], ["y"])
        assert op_spec("LayerNorm").alu_ops(node, x) == 32
